// Tenant benchmark catalog: phase-model renditions of the suites the
// paper runs on the victim nodes (§IV-A2).
//
//   HPCC   -- MPI kernels: DGEMM, STREAM, FFT, PTRANS, RandomAccess,
//             latency & bandwidth probes, HPL. Configured like the paper:
//             all cores busy, ~48 GB resident input per node.
//   HiBench/Hadoop -- KMeans, PageRank, WordCount, TeraSort, DFSIO-r/w as
//             map/shuffle/reduce phase sequences; HDFS reads depend on
//             the page cache (free-memory sensitive).
//   HiBench/Spark  -- the same jobs minus DFSIO, with executors pinning
//             48 GB per node and memory-capacity-sensitive sections (JVM
//             GC headroom), which is why Spark suffers most (§IV-C).
//
// Demands are per-node nominal values for a DAS-5-like node (16 cores,
// 60 GB/s bus, 3 GB/s NIC); sensitivity coefficients are the calibrated
// interference knobs (EXPERIMENTS.md lists them per benchmark).
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "tenant/app.hpp"

namespace memfss::tenant {

/// The HPCC categories the paper plots (order preserved).
std::vector<TenantApp> hpcc_suite();

/// The six representative HiBench-on-Hadoop benchmarks of Fig. 4.
std::vector<TenantApp> hibench_hadoop_suite();

/// The HiBench-on-Spark benchmarks of Fig. 5 (no DFSIO: "not yet
/// implemented for Spark").
std::vector<TenantApp> hibench_spark_suite();

/// Find an app by name across all three suites.
std::optional<TenantApp> find_app(std::string_view name);

}  // namespace memfss::tenant
