#include "tenant/runner.hpp"

#include <algorithm>
#include <cassert>

#include "common/log.hpp"
#include "sim/sync.hpp"

namespace memfss::tenant {

namespace {
// Latency/cache-critical sections integrate their progress in quanta so
// the penalty tracks interference as it changes over the section.
constexpr int kQuanta = 25;
}  // namespace

TenantRunner::TenantRunner(cluster::Cluster& cluster,
                           std::vector<NodeId> nodes,
                           fs::FileSystem* scavenger)
    : cluster_(cluster), nodes_(std::move(nodes)), scavenger_(scavenger) {
  assert(!nodes_.empty());
}

TenantRunner::ForeignLoad TenantRunner::foreign_load(NodeId node) const {
  ForeignLoad load;
  if (!scavenger_ || !scavenger_->has_server(node)) return load;
  const auto& srv = scavenger_->server(node);
  const auto& spec = cluster_.node(node).spec();
  const double req = srv.request_rate();
  const double bytes = srv.byte_rate();
  load.krequests = req / 1000.0;
  load.net_share = bytes / spec.nic.down;
  load.membw_share = bytes * srv.costs().membw_per_byte /
                     spec.memory_bandwidth;
  load.cpu_share =
      (req * srv.costs().cpu_per_request + bytes * srv.costs().cpu_per_byte) /
      spec.cores;
  return load;
}

sim::Task<> TenantRunner::run_phase(const Phase& phase,
                                    std::size_t node_index) {
  const NodeId node = nodes_[node_index];
  auto& nd = cluster_.node(node);
  auto& sim = cluster_.sim();
  std::vector<sim::Task<>> parts;

  if (phase.cpu_core_seconds > 0.0)
    parts.push_back(nd.cpu().consume(phase.cpu_core_seconds, phase.cpu_cores));

  if (phase.membw_bytes > 0.0)
    parts.push_back(nd.membw().consume(phase.membw_bytes));

  if (phase.net_bytes > 0 && nodes_.size() > 1) {
    const Rate cap = phase.net_rate_cap > 0 ? phase.net_rate_cap
                                            : net::Fabric::kUncapped;
    if (phase.pattern == NetPattern::ring) {
      const NodeId peer = nodes_[(node_index + 1) % nodes_.size()];
      parts.push_back(
          cluster_.fabric().transfer(node, peer, phase.net_bytes, cap));
    } else {
      const Bytes per_peer = phase.net_bytes / (nodes_.size() - 1);
      for (std::size_t j = 0; j < nodes_.size(); ++j) {
        if (j == node_index) continue;
        parts.push_back(
            cluster_.fabric().transfer(node, nodes_[j], per_peer, cap));
      }
    }
  }

  if (phase.sensitive.base_seconds > 0.0) {
    parts.push_back([](TenantRunner* r, const Phase& ph,
                       NodeId n) -> sim::Task<> {
      const auto& s = ph.sensitive;
      const double q = s.base_seconds / kQuanta;
      for (int i = 0; i < kQuanta; ++i) {
        const auto load = r->foreign_load(n);
        const double penalty = 1.0 + s.to_krequests * load.krequests +
                               s.to_net_share * load.net_share +
                               s.to_membw_share * load.membw_share +
                               s.to_cpu_share * load.cpu_share;
        co_await r->cluster_.sim().delay(q * penalty);
      }
    }(this, phase, node));
  }

  if (phase.cache_bound_seconds > 0.0) {
    parts.push_back([](TenantRunner* r, const Phase& ph,
                       NodeId n) -> sim::Task<> {
      const double q = ph.cache_bound_seconds / kQuanta;
      auto& mem = r->cluster_.node(n).memory();
      for (int i = 0; i < kQuanta; ++i) {
        double penalty = 1.0;
        if (ph.cache_working_set > 0) {
          const double free = static_cast<double>(mem.available());
          const double need = static_cast<double>(ph.cache_working_set);
          const double miss = std::clamp(1.0 - free / need, 0.0, 1.0);
          penalty = 1.0 + ph.cache_miss_penalty * miss;
        }
        co_await r->cluster_.sim().delay(q * penalty);
      }
    }(this, phase, node));
  }

  co_await sim::when_all(sim, std::move(parts));
}

sim::Task<TenantResult> TenantRunner::run(TenantApp app) {
  auto& sim = cluster_.sim();
  const SimTime t0 = sim.now();
  TenantResult result;

  // Pin the app's resident memory (input arrays, JVM heaps, Spark
  // executors) for its whole lifetime.
  std::vector<NodeId> charged;
  if (app.resident_memory > 0) {
    for (NodeId n : nodes_) {
      if (cluster_.node(n).memory().try_alloc(app.resident_memory)) {
        charged.push_back(n);
      } else {
        result.resident_memory_ok = false;
        LOG_WARN("tenant") << app.name << ": node " << n
                           << " cannot hold resident set";
      }
    }
  }

  for (int it = 0; it < app.iterations; ++it) {
    for (const auto& phase : app.phases) {
      std::vector<sim::Task<>> per_node;
      per_node.reserve(nodes_.size());
      for (std::size_t i = 0; i < nodes_.size(); ++i)
        per_node.push_back(run_phase(phase, i));
      co_await sim::when_all(sim, std::move(per_node));  // barrier
    }
  }

  for (NodeId n : charged) cluster_.node(n).memory().free(app.resident_memory);
  result.duration = sim.now() - t0;
  co_return result;
}

}  // namespace memfss::tenant
