// Tenant application model.
//
// A tenant app (an HPCC MPI benchmark, a HiBench Hadoop/Spark job) is a
// sequence of *phases* executed in lockstep across its nodes (barrier
// between phases, as in MPI collectives / MapReduce stage boundaries).
// Each phase declares per-node demands on the simulated resources:
//
//   cpu_core_seconds  -> node CPU        (contends with kvstore request CPU)
//   membw_bytes       -> memory bus      (contends with kvstore streaming)
//   net_bytes         -> NIC flows       (contends with scavenging flows)
//   latency section   -> progress scaled by the *foreign small-request
//                        rate* on the node (MPI latency sensitivity)
//   cache section     -> progress scaled by whether the phase's working
//                        set still fits in free node memory (page cache /
//                        JVM heap headroom -- the DFSIO-read and Spark
//                        effects of §IV-C)
//
// Slowdowns under scavenging are *emergent*: MemFSS's server charges land
// on the same FluidResources, CapGroups and MemoryPools.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace memfss::tenant {

enum class NetPattern { ring, alltoall };

struct Phase {
  std::string name;

  // Compute.
  double cpu_core_seconds = 0.0;  ///< per node
  double cpu_cores = 16.0;        ///< parallel width per node

  // Memory bus traffic.
  double membw_bytes = 0.0;       ///< per node

  // Network traffic to peer nodes.
  Bytes net_bytes = 0;            ///< per node (sent)
  NetPattern pattern = NetPattern::ring;
  /// Per-flow achievable rate (B/s). MPI point-to-point rarely drives an
  /// IPoIB link at line rate; leaving headroom here controls how much
  /// the phase *mechanically* collides with scavenging traffic on the
  /// fluid fabric. 0 = uncapped (saturating patterns like shuffles).
  Rate net_rate_cap = 0;

  // Interference-sensitive section. Models the super-proportional part of
  // co-location slowdown (cache pollution, interrupt/OS jitter, MPI
  // latency inflation) that a proportional-share fluid model cannot
  // produce on its own: the section's progress rate is scaled by the
  // *foreign* (scavenger-attributable) load on the node. The sensitivity
  // coefficients are the calibration knobs documented in EXPERIMENTS.md.
  struct SensitiveSection {
    double base_seconds = 0.0;  ///< clean duration of the section
    double to_krequests = 0.0;  ///< slowdown per 1000 foreign requests/s
    double to_net_share = 0.0;  ///< per unit foreign NIC utilization
    double to_membw_share = 0.0;///< per unit foreign memory-bus utilization
    double to_cpu_share = 0.0;  ///< per unit foreign CPU utilization
  };
  SensitiveSection sensitive;

  // Cache/capacity-sensitive section (page cache, JVM headroom).
  double cache_bound_seconds = 0.0;
  Bytes cache_working_set = 0;     ///< must fit in free memory
  double cache_miss_penalty = 3.0; ///< max rate slowdown when it does not
};

struct TenantApp {
  std::string name;
  std::string suite;               ///< "hpcc", "hibench-hadoop", ...
  Bytes resident_memory = 0;       ///< allocated per node for the app's life
  int iterations = 1;              ///< phase-list repetitions
  std::vector<Phase> phases;

  /// Sum of declared latency/cache/... base seconds (per iteration) --
  /// a lower bound on duration, used by tests.
  double declared_base_seconds() const;
};

}  // namespace memfss::tenant
