#include "tenant/kernels.hpp"

#include <cassert>
#include <chrono>
#include <cmath>
#include <numbers>

namespace memfss::tenant::kernels {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

double stream_triad(std::size_t n, std::size_t reps, double scalar) {
  std::vector<double> a(n, 0.0), b(n, 1.0), c(n, 2.0);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + scalar * c[i];
    // Rotate roles so the compiler cannot hoist the loop away.
    std::swap(a, b);
  }
  const double dt = seconds_since(t0);
  const double bytes =
      static_cast<double>(n) * static_cast<double>(reps) * 3.0 * sizeof(double);
  // Fold a value into a volatile sink to keep the work observable.
  volatile double sink = a[n / 2] + b[n / 3];
  (void)sink;
  return dt > 0 ? bytes / dt : 0.0;
}

void fft_radix2(std::vector<std::complex<double>>& a, bool inverse) {
  const std::size_t n = a.size();
  assert(n > 0 && (n & (n - 1)) == 0 && "size must be a power of two");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1 : -1);
    const std::complex<double> wl(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const auto u = a[i + k];
        const auto v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
}

std::vector<std::complex<double>> dft_reference(
    const std::vector<std::complex<double>>& a, bool inverse) {
  const std::size_t n = a.size();
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double ang = 2.0 * std::numbers::pi * static_cast<double>(k) *
                         static_cast<double>(t) / static_cast<double>(n) *
                         (inverse ? 1.0 : -1.0);
      acc += a[t] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

double dgemm_blocked(std::size_t n, const double* a, const double* b,
                     double* c, std::size_t block) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t ii = 0; ii < n; ii += block) {
    for (std::size_t kk = 0; kk < n; kk += block) {
      for (std::size_t jj = 0; jj < n; jj += block) {
        const std::size_t ie = std::min(n, ii + block);
        const std::size_t ke = std::min(n, kk + block);
        const std::size_t je = std::min(n, jj + block);
        for (std::size_t i = ii; i < ie; ++i) {
          for (std::size_t k = kk; k < ke; ++k) {
            const double aik = a[i * n + k];
            for (std::size_t j = jj; j < je; ++j)
              c[i * n + j] += aik * b[k * n + j];
          }
        }
      }
    }
  }
  const double dt = seconds_since(t0);
  const double flops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                       static_cast<double>(n);
  return dt > 0 ? flops / dt / 1e9 : 0.0;
}

void dgemm_naive(std::size_t n, const double* a, const double* b, double* c) {
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double acc = c[i * n + j];
      for (std::size_t k = 0; k < n; ++k) acc += a[i * n + k] * b[k * n + j];
      c[i * n + j] = acc;
    }
}

std::uint64_t random_access(std::vector<std::uint64_t>& table,
                            std::size_t updates, std::uint64_t seed) {
  assert(!table.empty() && (table.size() & (table.size() - 1)) == 0 &&
         "table size must be a power of two");
  const std::uint64_t mask = table.size() - 1;
  std::uint64_t x = seed ? seed : 1;
  for (std::size_t i = 0; i < updates; ++i) {
    // xorshift64 stream, as in the HPCC RandomAccess spirit.
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    table[x & mask] ^= x;
  }
  std::uint64_t digest = 0;
  for (std::uint64_t v : table) digest ^= v * 0x9e3779b97f4a7c15ull;
  return digest;
}

}  // namespace memfss::tenant::kernels
