// Real (actually-executing) microkernels mirroring the HPCC components.
//
// They serve two purposes: (1) calibration -- the google-benchmark targets
// report this machine's STREAM/FFT/DGEMM/GUPS figures so the simulated
// node parameters can be sanity-checked against real silicon; (2) they
// give the test suite genuine numerical code to validate (FFT vs. direct
// DFT, DGEMM vs. naive multiply, STREAM result checksums).
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace memfss::tenant::kernels {

/// STREAM triad a[i] = b[i] + s*c[i], `reps` passes over arrays of `n`
/// doubles. Returns achieved bytes/s (3 arrays touched per element).
double stream_triad(std::size_t n, std::size_t reps, double scalar = 3.0);

/// In-place iterative radix-2 Cooley-Tukey FFT; `a.size()` must be a
/// power of two. `inverse` applies the conjugate transform WITHOUT the
/// 1/N normalization (callers scale).
void fft_radix2(std::vector<std::complex<double>>& a, bool inverse = false);

/// Reference O(n^2) DFT for validation.
std::vector<std::complex<double>> dft_reference(
    const std::vector<std::complex<double>>& a, bool inverse = false);

/// Blocked DGEMM C += A*B for n x n row-major matrices; returns GFLOP/s.
double dgemm_blocked(std::size_t n, const double* a, const double* b,
                     double* c, std::size_t block = 64);

/// Naive triple loop for validation.
void dgemm_naive(std::size_t n, const double* a, const double* b, double* c);

/// RandomAccess (GUPS-like): xor-scatter `updates` pseudo-random updates
/// into `table`. Returns a digest of the table (order-independent check).
std::uint64_t random_access(std::vector<std::uint64_t>& table,
                            std::size_t updates, std::uint64_t seed = 1);

}  // namespace memfss::tenant::kernels
