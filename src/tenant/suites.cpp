#include "tenant/suites.hpp"

namespace memfss::tenant {

namespace {

using memfss::units::GiB;

// Shorthand builders keep the catalog readable.
Phase compute(std::string name, double core_seconds, double cores = 16.0) {
  Phase p;
  p.name = std::move(name);
  p.cpu_core_seconds = core_seconds;
  p.cpu_cores = cores;
  return p;
}

Phase& membw(Phase& p, double bytes) {
  p.membw_bytes = bytes;
  return p;
}

Phase& net(Phase& p, Bytes bytes, NetPattern pat = NetPattern::ring) {
  p.net_bytes = bytes;
  p.pattern = pat;
  return p;
}

Phase& sens(Phase& p, double base_s, double kreq, double net_share,
            double membw_share, double cpu_share = 0.0) {
  p.sensitive = {base_s, kreq, net_share, membw_share, cpu_share};
  return p;
}

Phase& cache(Phase& p, double base_s, Bytes working_set, double penalty) {
  p.cache_bound_seconds = base_s;
  p.cache_working_set = working_set;
  p.cache_miss_penalty = penalty;
  return p;
}

TenantApp app(std::string name, std::string suite, Bytes resident,
              std::vector<Phase> phases, int iterations = 1) {
  TenantApp a;
  a.name = std::move(name);
  a.suite = std::move(suite);
  a.resident_memory = resident;
  a.phases = std::move(phases);
  a.iterations = iterations;
  return a;
}

// Sensitivity coefficients are calibrated against the paper's Fig. 3-6 at
// the 8-own + 32-victim scale, where the co-located scavenging store sees
// roughly (dd / BLAST / Montage):
//   foreign NIC share      ~0.10 / 0.01 / 0.01
//   foreign requests/s     ~20   / 225  / 80
//   foreign bus share      ~0.010/ 0.001/ 0.001
// EXPERIMENTS.md records the resulting slowdowns next to the paper's.

}  // namespace

std::vector<TenantApp> hpcc_suite() {
  std::vector<TenantApp> out;

  {  // DGEMM: compute-bound, cache-resident; barely touches shared buses.
    Phase p = compute("dgemm", 16.0 * 150.0);
    membw(p, 0.8e12);
    sens(p, 20.0, 0.02, 0.15, 0.5);
    out.push_back(app("DGEMM", "hpcc", 48 * GiB, {p}));
  }
  {  // STREAM: memory-bandwidth bound; the bus is its whole world.
    Phase p = compute("stream", 16.0 * 10.0);
    membw(p, 3.0e12);
    sens(p, 70.0, 0.05, 0.25, 6.0);
    out.push_back(app("STREAM", "hpcc", 48 * GiB, {p}));
  }
  {  // FFT: bandwidth + all-to-all exchange.
    Phase p = compute("fft", 16.0 * 50.0);
    membw(p, 2.0e12);
    net(p, 20 * GiB, NetPattern::alltoall);
    sens(p, 45.0, 0.2, 0.5, 4.0);
    out.push_back(app("FFT", "hpcc", 48 * GiB, {p}));
  }
  {  // PTRANS: network-dominated transpose.
    Phase p = compute("ptrans", 16.0 * 20.0);
    membw(p, 1.0e12);
    net(p, 40 * GiB, NetPattern::alltoall);
    sens(p, 30.0, 0.1, 0.55, 1.0);
    out.push_back(app("PTRANS", "hpcc", 48 * GiB, {p}));
  }
  {  // RandomAccess: latency-ish memory updates + small messages.
    Phase p = compute("gups", 16.0 * 25.0);
    membw(p, 1.5e12);
    net(p, 4 * GiB, NetPattern::alltoall);
    sens(p, 60.0, 0.25, 0.3, 2.5);
    out.push_back(app("RandomAccess", "hpcc", 48 * GiB, {p}));
  }
  {  // Latency probe: ping-pong of tiny messages; pure jitter detector.
    Phase p = compute("latency", 16.0 * 2.0);
    sens(p, 100.0, 0.55, 0.65, 0.5);
    out.push_back(app("Latency", "hpcc", 48 * GiB, {p}));
  }
  {  // Bandwidth probe: large pairwise transfers. MPI point-to-point
     // tops out below IPoIB line rate, leaving headroom for the capped
     // scavenging flows -- the slowdown comes through the jitter channel,
     // not hard link saturation.
    Phase p = compute("bandwidth", 16.0 * 2.0);
    net(p, 100 * GiB, NetPattern::ring);
    p.net_rate_cap = 2.0e9;
    sens(p, 55.0, 0.05, 0.8, 0.3);
    out.push_back(app("Bandwidth", "hpcc", 48 * GiB, {p}));
  }
  {  // HPL: compute with periodic broadcasts.
    Phase p = compute("hpl", 16.0 * 200.0);
    membw(p, 2.0e12);
    net(p, 30 * GiB, NetPattern::ring);
    sens(p, 30.0, 0.05, 0.3, 2.0);
    out.push_back(app("HPL", "hpcc", 48 * GiB, {p}));
  }
  return out;
}

std::vector<TenantApp> hibench_hadoop_suite() {
  std::vector<TenantApp> out;

  {  // KMeans: CPU-heavy map with sizeable input I/O, tiny shuffle.
    Phase map = compute("map", 16.0 * 40.0);
    membw(map, 1.0e12);
    cache(map, 10.0, 8 * GiB, 1.0);
    sens(map, 12.0, 0.05, 0.5, 2.0);
    Phase shuffle = compute("shuffle", 16.0 * 2.0);
    net(shuffle, 5 * GiB, NetPattern::alltoall);
    Phase reduce = compute("reduce", 160.0);
    out.push_back(
        app("KMeans", "hibench-hadoop", 24 * GiB, {map, shuffle, reduce}, 3));
  }
  {  // PageRank: CPU-bound with bursty utilization.
    Phase map = compute("map", 16.0 * 30.0);
    sens(map, 10.0, 0.05, 0.5, 1.0);
    Phase shuffle = compute("shuffle", 16.0 * 2.0);
    net(shuffle, 8 * GiB, NetPattern::alltoall);
    sens(shuffle, 8.0, 0.05, 0.8, 0.5);
    Phase reduce = compute("reduce", 240.0);
    out.push_back(
        app("PageRank", "hibench-hadoop", 24 * GiB, {map, shuffle, reduce}, 3));
  }
  {  // WordCount: CPU-bound, high memory traffic.
    Phase map = compute("map", 16.0 * 60.0);
    membw(map, 2.0e12);
    sens(map, 20.0, 0.05, 0.4, 2.0);
    Phase shuffle = compute("shuffle", 16.0 * 1.0);
    net(shuffle, 3 * GiB, NetPattern::alltoall);
    Phase reduce = compute("reduce", 120.0);
    out.push_back(
        app("WordCount", "hibench-hadoop", 24 * GiB, {map, shuffle, reduce}));
  }
  {  // TeraSort: memory-hungry map + massive all-to-all shuffle -- the
     // benchmark MemFSS hurts most on Hadoop (competes for memory AND
     // network, §IV-C).
    Phase map = compute("map", 16.0 * 50.0);
    membw(map, 3.0e12);
    sens(map, 20.0, 0.3, 1.0, 3.0);
    Phase shuffle = compute("shuffle", 16.0 * 5.0);
    net(shuffle, 48 * GiB, NetPattern::alltoall);
    membw(shuffle, 2.0e12);
    sens(shuffle, 40.0, 2.5, 4.0, 2.0);
    Phase reduce = compute("reduce", 16.0 * 20.0);
    membw(reduce, 1.0e12);
    out.push_back(
        app("TeraSort", "hibench-hadoop", 24 * GiB, {map, shuffle, reduce}));
  }
  {  // DFSIO-read: HDFS reads served from the page cache -- free-memory
     // sensitive (scavenged bytes shrink the cache, §IV-C).
    Phase read = compute("read", 16.0 * 10.0);
    net(read, 10 * GiB, NetPattern::ring);
    cache(read, 80.0, 42 * GiB, 4.0);
    sens(read, 20.0, 0.05, 0.6, 0.5);
    out.push_back(app("DFSIO-read", "hibench-hadoop", 24 * GiB, {read}));
  }
  {  // DFSIO-write: replication traffic + buffered writes.
    Phase write = compute("write", 16.0 * 10.0);
    net(write, 30 * GiB, NetPattern::ring);
    membw(write, 2.0e12);
    sens(write, 40.0, 0.05, 0.55, 1.0);
    out.push_back(app("DFSIO-write", "hibench-hadoop", 24 * GiB, {write}));
  }
  return out;
}

std::vector<TenantApp> hibench_spark_suite() {
  // Spark executors pin 48 GB per node (the paper allocates exactly that)
  // and keep working sets in memory: every job gains a JVM-headroom cache
  // section and a higher memory-bus appetite. Sensitive sections are
  // sized to the phase's dominant component so JVM/GC jitter extends the
  // phase (a section shorter than the bulk work would be shadowed by the
  // concurrent-composition semantics of Phase).
  std::vector<TenantApp> out;

  {
    Phase map = compute("map", 16.0 * 30.0);
    membw(map, 2.0e12);
    cache(map, 25.0, 15 * GiB, 1.5);
    sens(map, 35.0, 0.8, 1.5, 12.0);
    Phase shuffle = compute("shuffle", 16.0 * 2.0);
    net(shuffle, 4 * GiB, NetPattern::alltoall);
    Phase reduce = compute("reduce", 120.0);
    out.push_back(
        app("KMeans", "hibench-spark", 48 * GiB, {map, shuffle, reduce}, 3));
  }
  {
    Phase map = compute("map", 16.0 * 25.0);
    membw(map, 1.5e12);
    cache(map, 20.0, 15 * GiB, 1.5);
    sens(map, 28.0, 0.8, 1.5, 10.0);
    Phase shuffle = compute("shuffle", 16.0 * 2.0);
    net(shuffle, 10 * GiB, NetPattern::alltoall);
    sens(shuffle, 8.0, 0.5, 1.5, 1.0);
    Phase reduce = compute("reduce", 200.0);
    out.push_back(
        app("PageRank", "hibench-spark", 48 * GiB, {map, shuffle, reduce}, 3));
  }
  {
    Phase map = compute("map", 16.0 * 45.0);
    membw(map, 2.5e12);
    cache(map, 20.0, 15 * GiB, 1.2);
    sens(map, 45.0, 0.8, 1.2, 10.0);
    Phase shuffle = compute("shuffle", 16.0 * 1.0);
    net(shuffle, 3 * GiB, NetPattern::alltoall);
    Phase reduce = compute("reduce", 100.0);
    out.push_back(
        app("WordCount", "hibench-spark", 48 * GiB, {map, shuffle, reduce}));
  }
  {
    Phase map = compute("map", 16.0 * 40.0);
    membw(map, 3.5e12);
    cache(map, 25.0, 15 * GiB, 1.5);
    sens(map, 60.0, 1.0, 2.0, 15.0);
    Phase shuffle = compute("shuffle", 16.0 * 5.0);
    net(shuffle, 40 * GiB, NetPattern::alltoall);
    membw(shuffle, 2.5e12);
    cache(shuffle, 15.0, 15 * GiB, 1.5);
    sens(shuffle, 45.0, 2.0, 4.0, 10.0);
    Phase reduce = compute("reduce", 16.0 * 15.0);
    membw(reduce, 1.5e12);
    out.push_back(
        app("TeraSort", "hibench-spark", 48 * GiB, {map, shuffle, reduce}));
  }
  return out;
}

std::optional<TenantApp> find_app(std::string_view name) {
  for (auto suite : {hpcc_suite(), hibench_hadoop_suite(),
                     hibench_spark_suite()}) {
    for (auto& a : suite)
      if (a.name == name) return a;
  }
  return std::nullopt;
}

}  // namespace memfss::tenant
