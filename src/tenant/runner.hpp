// Executes a TenantApp on a set of victim nodes inside the simulation.
//
// Phases run in lockstep: every node completes phase k before any node
// starts phase k+1 (MPI barrier / MapReduce stage boundary). The runner
// optionally observes a scavenging FileSystem to read the foreign
// small-request rate on each node (the latency-interference channel).
#pragma once

#include <vector>

#include "cluster/cluster.hpp"
#include "common/types.hpp"
#include "fs/filesystem.hpp"
#include "sim/task.hpp"
#include "tenant/app.hpp"

namespace memfss::tenant {

struct TenantResult {
  SimTime duration = 0.0;
  bool resident_memory_ok = true;  ///< false if allocation failed somewhere
};

class TenantRunner {
 public:
  /// `scavenger`: the MemFSS instance whose servers may be co-located on
  /// these nodes (nullptr = clean run).
  TenantRunner(cluster::Cluster& cluster, std::vector<NodeId> nodes,
               fs::FileSystem* scavenger = nullptr);

  sim::Task<TenantResult> run(TenantApp app);

 private:
  /// Foreign (scavenger-attributable) load on a node, as seen by the
  /// interference model.
  struct ForeignLoad {
    double krequests = 0.0;   ///< foreign requests per second / 1000
    double net_share = 0.0;   ///< foreign bytes/s over NIC capacity
    double membw_share = 0.0; ///< foreign bus traffic over bus capacity
    double cpu_share = 0.0;   ///< foreign CPU over core capacity
  };

  sim::Task<> run_phase(const Phase& phase, std::size_t node_index);
  ForeignLoad foreign_load(NodeId node) const;

  cluster::Cluster& cluster_;
  std::vector<NodeId> nodes_;
  fs::FileSystem* scavenger_;
};

}  // namespace memfss::tenant
