#include "workflow/trace.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/str.hpp"

namespace memfss::workflow {

Result<Bytes> parse_size(const std::string& token) {
  if (token.empty()) return Error{Errc::invalid_argument, "empty size"};
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || v < 0)
    return Error{Errc::invalid_argument, "bad size: " + token};
  double mult = 1;
  if (*end) {
    switch (std::toupper(static_cast<unsigned char>(*end))) {
      case 'K': mult = double(units::KiB); break;
      case 'M': mult = double(units::MiB); break;
      case 'G': mult = double(units::GiB); break;
      case 'T': mult = double(units::TiB); break;
      default:
        return Error{Errc::invalid_argument, "bad size suffix: " + token};
    }
    if (*(end + 1))
      return Error{Errc::invalid_argument, "trailing junk: " + token};
  }
  return static_cast<Bytes>(v * mult);
}

namespace {

/// "key=value" -> value; empty if the prefix does not match.
std::string attr_value(const std::string& token, std::string_view key) {
  if (token.size() > key.size() + 1 && token.compare(0, key.size(), key) == 0 &&
      token[key.size()] == '=')
    return token.substr(key.size() + 1);
  return {};
}

Error at_line(std::size_t line, const std::string& what) {
  return Error{Errc::invalid_argument,
               strformat("line %zu: %s", line, what.c_str())};
}

}  // namespace

Result<Workflow> parse_workflow(std::istream& in) {
  Workflow wf;
  wf.name = "trace";
  std::string line;
  std::size_t lineno = 0;
  bool have_task = false;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and surrounding whitespace.
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;  // blank

    if (word == "workflow") {
      if (!(ls >> wf.name)) return at_line(lineno, "workflow needs a name");
    } else if (word == "task") {
      TaskSpec t;
      if (!(ls >> t.name)) return at_line(lineno, "task needs a name");
      std::string tok;
      while (ls >> tok) {
        if (auto v = attr_value(tok, "stage"); !v.empty()) {
          t.stage = v;
        } else if (auto v2 = attr_value(tok, "cpu"); !v2.empty()) {
          t.cpu_seconds = std::atof(v2.c_str());
        } else if (auto v3 = attr_value(tok, "cores"); !v3.empty()) {
          t.cores = std::atof(v3.c_str());
        } else if (auto v4 = attr_value(tok, "reqs_per_mib"); !v4.empty()) {
          t.io.extra_requests_per_mib = std::atof(v4.c_str());
        } else {
          return at_line(lineno, "unknown task attribute: " + tok);
        }
      }
      if (t.stage.empty()) t.stage = t.name;
      if (t.cpu_seconds < 0 || t.cores <= 0)
        return at_line(lineno, "invalid cpu/cores");
      wf.tasks.push_back(std::move(t));
      have_task = true;
    } else if (word == "in") {
      if (!have_task) return at_line(lineno, "'in' before any task");
      std::string path;
      if (!(ls >> path)) return at_line(lineno, "'in' needs a path");
      wf.tasks.back().inputs.push_back(std::move(path));
    } else if (word == "out") {
      if (!have_task) return at_line(lineno, "'out' before any task");
      std::string path, size;
      if (!(ls >> path >> size))
        return at_line(lineno, "'out' needs a path and a size");
      auto bytes = parse_size(size);
      if (!bytes.ok()) return at_line(lineno, bytes.error().message);
      wf.tasks.back().outputs.push_back({std::move(path), bytes.value()});
    } else {
      return at_line(lineno, "unknown directive: " + word);
    }
  }
  // Validate the DAG here so callers get parse-time errors for cycles and
  // duplicate producers too.
  if (auto dag = Dag::build(wf); !dag.ok()) return dag.error();
  return wf;
}

Result<Workflow> parse_workflow_text(const std::string& text) {
  std::istringstream in(text);
  return parse_workflow(in);
}

Result<Workflow> load_workflow_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Error{Errc::not_found, path};
  return parse_workflow(in);
}

std::string to_trace(const Workflow& wf) {
  std::ostringstream out;
  out << "workflow " << wf.name << "\n";
  for (const auto& t : wf.tasks) {
    // %.17g: shortest representation that round-trips a double exactly.
    out << "task " << t.name << " stage=" << t.stage
        << strformat(" cpu=%.17g cores=%.17g", t.cpu_seconds, t.cores);
    if (t.io.extra_requests_per_mib > 0)
      out << strformat(" reqs_per_mib=%.17g", t.io.extra_requests_per_mib);
    out << "\n";
    for (const auto& in_path : t.inputs) out << "in " << in_path << "\n";
    for (const auto& o : t.outputs)
      out << "out " << o.path << " " << o.bytes << "\n";
  }
  return out.str();
}

Status save_workflow_file(const Workflow& wf, const std::string& path) {
  std::ofstream out(path);
  if (!out) return {Errc::io_error, "cannot open " + path};
  out << to_trace(wf);
  return out.good() ? Status{} : Status{Errc::io_error, "write failed"};
}

}  // namespace memfss::workflow
