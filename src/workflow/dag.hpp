// Scientific-workflow DAG model.
//
// A workflow is a list of tasks linked by data dependencies: a task reads
// files that earlier tasks write (the paper's §II-A: "applications
// composed of many tasks that communicate by means of files"). Stage
// structure -- wide parallel stages followed by long sequential
// aggregation/partitioning stages -- is what limits achievable
// parallelism and motivates scavenging.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"

namespace memfss::workflow {

struct OutputSpec {
  std::string path;
  Bytes bytes = 0;
};

/// Shapes the kvstore request granularity of a task's I/O: tasks that
/// issue many small requests (BLAST) disturb latency-sensitive tenants
/// more than bulk streamers (dd) at equal volume (paper §IV-C).
struct IoProfile {
  double extra_requests_per_mib = 0.0;
};

struct TaskSpec {
  std::string name;
  std::string stage;                ///< stage label (mProject, map, ...)
  double cpu_seconds = 0.0;         ///< compute work in core-seconds
  double cores = 1.0;               ///< max cores the task can use
  std::vector<std::string> inputs;  ///< file paths read before compute
  std::vector<OutputSpec> outputs;  ///< files written after compute
  IoProfile io;
};

struct Workflow {
  std::string name;
  std::vector<TaskSpec> tasks;

  /// Sum of all output sizes (total intermediate data volume).
  Bytes total_output_bytes() const;

  /// Sum of compute work.
  double total_cpu_seconds() const;
};

/// Dependency structure derived from file producer/consumer relations.
class Dag {
 public:
  /// Builds edges: task B depends on task A iff B reads a file A writes.
  /// Fails if a file has two producers or the graph has a cycle.
  static Result<Dag> build(const Workflow& wf);

  std::size_t task_count() const { return deps_.size(); }
  const std::vector<std::size_t>& dependencies(std::size_t task) const {
    return deps_[task];
  }
  const std::vector<std::size_t>& dependents(std::size_t task) const {
    return children_[task];
  }

  /// Tasks with no dependencies.
  std::vector<std::size_t> roots() const;

  /// A topological order (deterministic: by task index among ready).
  const std::vector<std::size_t>& topo_order() const { return topo_; }

  /// Length of the critical path in cpu_seconds (lower bound on makespan
  /// with infinite resources, ignoring I/O).
  double critical_path_seconds(const Workflow& wf) const;

  /// Maximum number of tasks that could run concurrently (antichain upper
  /// bound via level widths).
  std::size_t max_stage_width(const Workflow& wf) const;

 private:
  std::vector<std::vector<std::size_t>> deps_;
  std::vector<std::vector<std::size_t>> children_;
  std::vector<std::size_t> topo_;
};

}  // namespace memfss::workflow
