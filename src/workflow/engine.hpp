// Workflow execution engine: list-schedules a DAG onto the own nodes.
//
// Tasks become runnable when their producers finish; the dispatcher
// assigns each runnable task to the own node with the most free slots
// (slots default to the node's core count). A task's life cycle is
//   read inputs (MemFSS) -> compute (node CPU) -> write outputs (MemFSS),
// so every I/O byte flows through the filesystem under test and every
// compute second contends on the simulated cores -- the structure whose
// limited parallelism Table II / Fig. 7 quantify.
//
// The live-coroutine count is bounded by the total slot count, not the
// task count, so 100k-task workflows are fine.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/result.hpp"
#include "common/stats.hpp"
#include "fs/filesystem.hpp"
#include "sim/task.hpp"
#include "workflow/dag.hpp"

namespace memfss::workflow {

/// How the dispatcher picks a worker node for a runnable task.
enum class SlotPolicy {
  least_loaded,  ///< most free slots (default; balances dynamically)
  round_robin,   ///< rotate through workers regardless of load
  random,        ///< uniform choice among workers with a free slot
  pack_first,    ///< lowest-index worker with a free slot (bin packing)
};

struct EngineConfig {
  double slots_per_node = 0.0;  ///< 0 = use the node's core count
  SlotPolicy slot_policy = SlotPolicy::least_loaded;
  std::uint64_t seed = 1;       ///< for SlotPolicy::random
};

struct Report {
  Status status{};
  SimTime makespan = 0.0;
  std::size_t tasks_run = 0;
  Bytes bytes_written = 0;
  Bytes bytes_read = 0;
  std::map<std::string, RunningStats> stage_durations;

  /// Node-hours consumed: workers x makespan / 3600.
  double node_hours(std::size_t workers) const {
    return static_cast<double>(workers) * makespan / 3600.0;
  }
};

class Engine {
 public:
  Engine(cluster::Cluster& cluster, fs::FileSystem& fs,
         std::vector<NodeId> worker_nodes, EngineConfig config = {});

  /// Execute the workflow to completion. The returned task must be
  /// awaited (or spawned) on the cluster's simulator.
  sim::Task<Report> run(Workflow wf);

 private:
  struct RunState;

  sim::Task<> run_task(RunState& st, std::size_t idx, NodeId node);

  cluster::Cluster& cluster_;
  fs::FileSystem& fs_;
  std::vector<NodeId> workers_;
  EngineConfig config_;
};

}  // namespace memfss::workflow
