// Workload generators for the paper's three MemFSS applications (§IV-A1)
// plus a generic fork-join used by tests.
//
//  - dd bag:    2048 independent tasks, 128 MiB sequential write each --
//               the I/O-bound upper bound on scavenging overhead.
//  - Montage:   wide short-task stages (1-4 MB files) interleaved with
//               long sequential aggregation stages (mConcatFit, mBgModel,
//               mAdd) -- the poor-scalability shape of Fig. 7 / Table II.
//  - BLAST:     CPU-bound tasks of tens of seconds to minutes, files of
//               hundreds of MB, and *many small I/O requests* (the
//               IoProfile knob), which is why BLAST perturbs
//               latency-sensitive MPI tenants more than dd does.
//
// All distributions draw from the caller's Rng: same seed, same workflow.
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"
#include "workflow/dag.hpp"

namespace memfss::workflow {

/// Bag of independent write tasks (the paper's dd microbenchmark).
Workflow make_dd_bag(std::size_t tasks = 2048,
                     Bytes bytes_per_task = 128 * units::MiB);

struct MontageParams {
  std::size_t tiles = 256;      ///< projection width T
  Bytes proj_bytes_min = 1 * units::MiB;
  Bytes proj_bytes_max = 4 * units::MiB;
  double proj_cpu_min = 2.0, proj_cpu_max = 10.0;
  double diff_cpu_min = 0.5, diff_cpu_max = 3.0;
  double bg_cpu_min = 1.0, bg_cpu_max = 3.0;
  double concat_cpu = 300.0;    ///< sequential aggregation stages
  double bgmodel_cpu = 600.0;
  double imgtbl_cpu = 120.0;
  double madd_cpu = 1200.0;
  double shrink_cpu = 60.0;
  /// FUSE-level chatter of the wide stages: Montage tasks poke many
  /// small files, so each MiB of payload carries some extra requests.
  double small_requests_per_mib = 0.0;
};

/// Montage-like image-mosaicking workflow.
Workflow make_montage(const MontageParams& p, Rng& rng);

struct BlastParams {
  std::size_t queries = 64;
  Bytes chunk_bytes_min = 64 * units::MiB;
  Bytes chunk_bytes_max = 192 * units::MiB;
  Bytes result_bytes_min = 128 * units::MiB;
  Bytes result_bytes_max = 512 * units::MiB;
  double task_cpu_min = 30.0, task_cpu_max = 180.0;
  double split_cpu = 60.0, merge_cpu = 120.0;
  double small_requests_per_mib = 40.0;  ///< BLAST's chatty I/O pattern
};

/// BLAST-like sequence-alignment workflow.
Workflow make_blast(const BlastParams& p, Rng& rng);

/// width parallel tasks between a source and a sink (tests).
Workflow make_fork_join(std::size_t width, double task_cpu,
                        Bytes file_bytes);

// --- the other real-world workflows the paper cites (§II-A) -----------------
//
// Shapes follow the Pegasus workflow-gallery characterizations (Juve et
// al. 2013, the paper's [7]): each combines wide parallel stages with
// narrow aggregation/partitioning bottlenecks, which is exactly the
// limited-scalability structure scavenging exploits.

struct CyberShakeParams {
  std::size_t sites = 8;             ///< rupture sites
  std::size_t variations = 48;       ///< seismogram tasks per site
  Bytes sgt_bytes = 256 * units::MiB;   ///< strain Green tensor per site
  Bytes seismogram_bytes = 1 * units::MiB;
  double extract_cpu = 60.0, seismo_cpu_min = 5.0, seismo_cpu_max = 20.0;
  double peak_cpu = 2.0, zip_cpu = 120.0;
};

/// CyberShake-like seismic-hazard workflow: per-site SGT extraction fans
/// out to thousands of short seismogram/PSA tasks, gathered by one zip.
Workflow make_cybershake(const CyberShakeParams& p, Rng& rng);

struct LigoParams {
  std::size_t segments = 64;         ///< detector data segments
  Bytes segment_bytes = 128 * units::MiB;
  Bytes template_bytes = 8 * units::MiB;
  double inspiral_cpu_min = 60.0, inspiral_cpu_max = 300.0;
  double thinca_cpu = 90.0;
  std::size_t branches = 2;          ///< coincidence branches
};

/// LIGO-like inspiral analysis: long CPU-heavy matched-filter tasks per
/// segment, interleaved with coincidence (thinca) aggregations.
Workflow make_ligo(const LigoParams& p, Rng& rng);

struct SiphtParams {
  std::size_t partitions = 32;       ///< genome partitions
  Bytes blast_out_bytes = 24 * units::MiB;
  double blast_cpu_min = 20.0, blast_cpu_max = 90.0;
  double srna_cpu = 150.0, annotate_cpu = 45.0;
};

/// SIPHT-like sRNA annotation: many independent BLAST-family searches
/// feeding one sRNA prediction and a final annotation stage.
Workflow make_sipht(const SiphtParams& p, Rng& rng);

struct EpigenomicsParams {
  std::size_t lanes = 4;             ///< sequencing lanes
  std::size_t chunks_per_lane = 32;  ///< fastq splits per lane
  Bytes chunk_bytes = 64 * units::MiB;
  double map_cpu_min = 30.0, map_cpu_max = 120.0;
  double merge_cpu = 180.0, index_cpu = 60.0;
};

/// Epigenomics-like methylation pipeline: per-lane chains of
/// filter->map->merge, then a genome-wide index -- a deep, narrow DAG.
Workflow make_epigenomics(const EpigenomicsParams& p, Rng& rng);

}  // namespace memfss::workflow
