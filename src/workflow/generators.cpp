#include "workflow/generators.hpp"

#include <cmath>

#include "common/str.hpp"

namespace memfss::workflow {

Workflow make_dd_bag(std::size_t tasks, Bytes bytes_per_task) {
  Workflow wf;
  wf.name = "dd";
  wf.tasks.reserve(tasks);
  for (std::size_t i = 0; i < tasks; ++i) {
    TaskSpec t;
    t.name = strformat("dd-%zu", i);
    t.stage = "dd";
    t.cpu_seconds = 0.2;  // dd is I/O bound; negligible compute
    t.outputs.push_back({strformat("/dd/out-%zu", i), bytes_per_task});
    wf.tasks.push_back(std::move(t));
  }
  return wf;
}

Workflow make_montage(const MontageParams& p, Rng& rng) {
  Workflow wf;
  wf.name = "montage";
  const std::size_t T = p.tiles;
  const std::size_t grid = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(std::sqrt(double(T)))));

  std::vector<Bytes> proj_size(T);

  // mProject: wide, short, small files; reads external raw tiles.
  for (std::size_t i = 0; i < T; ++i) {
    TaskSpec t;
    t.name = strformat("mProject-%zu", i);
    t.stage = "mProject";
    t.cpu_seconds = rng.uniform(p.proj_cpu_min, p.proj_cpu_max);
    t.io.extra_requests_per_mib = p.small_requests_per_mib;
    t.inputs.push_back(strformat("/raw/tile-%zu.fits", i));  // external
    proj_size[i] =
        rng.uniform_u64(p.proj_bytes_min, p.proj_bytes_max);
    t.outputs.push_back({strformat("/montage/proj/p-%zu.fits", i),
                         proj_size[i]});
    wf.tasks.push_back(std::move(t));
  }

  // mDiffFit: neighbouring tile pairs on a grid (right + down) -- ~2T
  // short tasks with tiny outputs.
  std::vector<std::string> fit_files;
  auto add_diff = [&](std::size_t a, std::size_t b) {
    TaskSpec t;
    t.name = strformat("mDiffFit-%zu-%zu", a, b);
    t.stage = "mDiffFit";
    t.cpu_seconds = rng.uniform(p.diff_cpu_min, p.diff_cpu_max);
    t.io.extra_requests_per_mib = p.small_requests_per_mib;
    t.inputs.push_back(strformat("/montage/proj/p-%zu.fits", a));
    t.inputs.push_back(strformat("/montage/proj/p-%zu.fits", b));
    const std::string out = strformat("/montage/diff/fit-%zu-%zu", a, b);
    t.outputs.push_back({out, rng.uniform_u64(50 * units::KiB,
                                              200 * units::KiB)});
    fit_files.push_back(out);
    wf.tasks.push_back(std::move(t));
  };
  for (std::size_t i = 0; i < T; ++i) {
    if ((i + 1) % grid != 0 && i + 1 < T) add_diff(i, i + 1);   // right
    if (i + grid < T) add_diff(i, i + grid);                    // down
  }

  // mConcatFit: one long sequential aggregation task.
  {
    TaskSpec t;
    t.name = "mConcatFit";
    t.stage = "mConcatFit";
    t.cpu_seconds = p.concat_cpu;
    t.inputs = fit_files;
    t.outputs.push_back({"/montage/fits.tbl", 1 * units::MiB});
    wf.tasks.push_back(std::move(t));
  }
  // mBgModel: one long sequential modelling task.
  {
    TaskSpec t;
    t.name = "mBgModel";
    t.stage = "mBgModel";
    t.cpu_seconds = p.bgmodel_cpu;
    t.inputs.push_back("/montage/fits.tbl");
    t.outputs.push_back({"/montage/corrections.tbl", 1 * units::MiB});
    wf.tasks.push_back(std::move(t));
  }

  // mBackground: wide again.
  for (std::size_t i = 0; i < T; ++i) {
    TaskSpec t;
    t.name = strformat("mBackground-%zu", i);
    t.stage = "mBackground";
    t.cpu_seconds = rng.uniform(p.bg_cpu_min, p.bg_cpu_max);
    t.io.extra_requests_per_mib = p.small_requests_per_mib;
    t.inputs.push_back(strformat("/montage/proj/p-%zu.fits", i));
    t.inputs.push_back("/montage/corrections.tbl");
    t.outputs.push_back({strformat("/montage/corr/c-%zu.fits", i),
                         proj_size[i]});
    wf.tasks.push_back(std::move(t));
  }

  // mImgtbl -> mAdd -> mShrink: the long sequential tail.
  {
    TaskSpec t;
    t.name = "mImgtbl";
    t.stage = "mImgtbl";
    t.cpu_seconds = p.imgtbl_cpu;
    for (std::size_t i = 0; i < T; ++i)
      t.inputs.push_back(strformat("/montage/corr/c-%zu.fits", i));
    t.outputs.push_back({"/montage/images.tbl", 1 * units::MiB});
    wf.tasks.push_back(std::move(t));
  }
  Bytes mosaic = 0;
  for (Bytes b : proj_size) mosaic += b / 2;
  {
    TaskSpec t;
    t.name = "mAdd";
    t.stage = "mAdd";
    t.cpu_seconds = p.madd_cpu;
    t.inputs.push_back("/montage/images.tbl");
    for (std::size_t i = 0; i < T; ++i)
      t.inputs.push_back(strformat("/montage/corr/c-%zu.fits", i));
    t.outputs.push_back({"/montage/mosaic.fits", mosaic});
    wf.tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    t.name = "mShrink";
    t.stage = "mShrink";
    t.cpu_seconds = p.shrink_cpu;
    t.inputs.push_back("/montage/mosaic.fits");
    t.outputs.push_back(
        {"/montage/mosaic_small.fits", std::max<Bytes>(1, mosaic / 100)});
    wf.tasks.push_back(std::move(t));
  }
  return wf;
}

Workflow make_blast(const BlastParams& p, Rng& rng) {
  Workflow wf;
  wf.name = "blast";
  const std::size_t Q = p.queries;

  {
    TaskSpec t;
    t.name = "split";
    t.stage = "split";
    t.cpu_seconds = p.split_cpu;
    t.inputs.push_back("/raw/queries.fasta");  // external
    for (std::size_t i = 0; i < Q; ++i) {
      t.outputs.push_back(
          {strformat("/blast/chunk-%zu", i),
           rng.uniform_u64(p.chunk_bytes_min, p.chunk_bytes_max)});
    }
    wf.tasks.push_back(std::move(t));
  }
  for (std::size_t i = 0; i < Q; ++i) {
    TaskSpec t;
    t.name = strformat("blastn-%zu", i);
    t.stage = "blastn";
    t.cpu_seconds = rng.uniform(p.task_cpu_min, p.task_cpu_max);
    t.inputs.push_back(strformat("/blast/chunk-%zu", i));
    t.outputs.push_back(
        {strformat("/blast/result-%zu", i),
         rng.uniform_u64(p.result_bytes_min, p.result_bytes_max)});
    t.io.extra_requests_per_mib = p.small_requests_per_mib;
    wf.tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    t.name = "merge";
    t.stage = "merge";
    t.cpu_seconds = p.merge_cpu;
    Bytes total = 0;
    for (std::size_t i = 0; i < Q; ++i)
      t.inputs.push_back(strformat("/blast/result-%zu", i));
    for (const auto& task : wf.tasks)
      if (task.stage == "blastn") total += task.outputs[0].bytes;
    t.outputs.push_back({"/blast/final", total / 10});
    wf.tasks.push_back(std::move(t));
  }
  return wf;
}

Workflow make_cybershake(const CyberShakeParams& p, Rng& rng) {
  Workflow wf;
  wf.name = "cybershake";
  std::vector<std::string> peak_files;
  for (std::size_t s = 0; s < p.sites; ++s) {
    // ExtractSGT: one hefty task per site producing the strain tensor.
    {
      TaskSpec t;
      t.name = strformat("ExtractSGT-%zu", s);
      t.stage = "ExtractSGT";
      t.cpu_seconds = p.extract_cpu;
      t.inputs.push_back(strformat("/raw/sgt-master-%zu", s));  // external
      t.outputs.push_back({strformat("/cs/sgt-%zu", s), p.sgt_bytes});
      wf.tasks.push_back(std::move(t));
    }
    // SeismogramSynthesis + PeakValCalc: the wide, short fan-out.
    for (std::size_t v = 0; v < p.variations; ++v) {
      TaskSpec seis;
      seis.name = strformat("Seismogram-%zu-%zu", s, v);
      seis.stage = "Seismogram";
      seis.cpu_seconds = rng.uniform(p.seismo_cpu_min, p.seismo_cpu_max);
      seis.inputs.push_back(strformat("/cs/sgt-%zu", s));
      seis.outputs.push_back(
          {strformat("/cs/seis-%zu-%zu", s, v), p.seismogram_bytes});
      wf.tasks.push_back(std::move(seis));

      TaskSpec peak;
      peak.name = strformat("PeakVal-%zu-%zu", s, v);
      peak.stage = "PeakVal";
      peak.cpu_seconds = p.peak_cpu;
      peak.inputs.push_back(strformat("/cs/seis-%zu-%zu", s, v));
      const std::string out = strformat("/cs/peak-%zu-%zu", s, v);
      peak.outputs.push_back({out, 64 * units::KiB});
      peak_files.push_back(out);
      wf.tasks.push_back(std::move(peak));
    }
  }
  // ZipPSA: single long gather of every peak file.
  TaskSpec zip;
  zip.name = "ZipPSA";
  zip.stage = "ZipPSA";
  zip.cpu_seconds = p.zip_cpu;
  zip.inputs = peak_files;
  zip.outputs.push_back(
      {"/cs/hazard.zip",
       static_cast<Bytes>(peak_files.size()) * 64 * units::KiB});
  wf.tasks.push_back(std::move(zip));
  return wf;
}

Workflow make_ligo(const LigoParams& p, Rng& rng) {
  Workflow wf;
  wf.name = "ligo";
  // TmpltBank per segment, Inspiral per segment, then per-branch thinca
  // coincidence over segment groups, a second inspiral pass and a final
  // coincidence -- the characteristic deep LIGO chain.
  std::vector<std::string> first_pass;
  for (std::size_t i = 0; i < p.segments; ++i) {
    {
      TaskSpec t;
      t.name = strformat("TmpltBank-%zu", i);
      t.stage = "TmpltBank";
      t.cpu_seconds = rng.uniform(30.0, 90.0);
      t.inputs.push_back(strformat("/raw/segment-%zu", i));  // external
      t.outputs.push_back(
          {strformat("/ligo/bank-%zu", i), p.template_bytes});
      wf.tasks.push_back(std::move(t));
    }
    {
      TaskSpec t;
      t.name = strformat("Inspiral1-%zu", i);
      t.stage = "Inspiral";
      t.cpu_seconds = rng.uniform(p.inspiral_cpu_min, p.inspiral_cpu_max);
      t.inputs.push_back(strformat("/ligo/bank-%zu", i));
      t.outputs.push_back(
          {strformat("/ligo/trig1-%zu", i), p.segment_bytes / 16});
      first_pass.push_back(strformat("/ligo/trig1-%zu", i));
      wf.tasks.push_back(std::move(t));
    }
  }
  const std::size_t group = std::max<std::size_t>(
      1, p.segments / std::max<std::size_t>(1, p.branches));
  std::vector<std::string> thinca_files;
  for (std::size_t b = 0; b < p.branches; ++b) {
    TaskSpec t;
    t.name = strformat("Thinca1-%zu", b);
    t.stage = "Thinca";
    t.cpu_seconds = p.thinca_cpu;
    for (std::size_t i = b * group;
         i < std::min(p.segments, (b + 1) * group); ++i)
      t.inputs.push_back(first_pass[i]);
    const std::string out = strformat("/ligo/coinc1-%zu", b);
    t.outputs.push_back({out, 16 * units::MiB});
    thinca_files.push_back(out);
    wf.tasks.push_back(std::move(t));
  }
  // Second inspiral pass: follow up the coincidences.
  std::vector<std::string> second_pass;
  for (std::size_t i = 0; i < p.segments / 2; ++i) {
    TaskSpec t;
    t.name = strformat("Inspiral2-%zu", i);
    t.stage = "Inspiral2";
    t.cpu_seconds = rng.uniform(p.inspiral_cpu_min, p.inspiral_cpu_max) / 2;
    t.inputs.push_back(thinca_files[i % thinca_files.size()]);
    t.outputs.push_back(
        {strformat("/ligo/trig2-%zu", i), p.segment_bytes / 32});
    second_pass.push_back(strformat("/ligo/trig2-%zu", i));
    wf.tasks.push_back(std::move(t));
  }
  TaskSpec fin;
  fin.name = "Thinca2";
  fin.stage = "Thinca";
  fin.cpu_seconds = p.thinca_cpu;
  fin.inputs = second_pass;
  fin.outputs.push_back({"/ligo/events", 8 * units::MiB});
  wf.tasks.push_back(std::move(fin));
  return wf;
}

Workflow make_sipht(const SiphtParams& p, Rng& rng) {
  Workflow wf;
  wf.name = "sipht";
  // Several independent BLAST-family searches per partition...
  static constexpr const char* kSearches[] = {"Blast", "BlastQRNA",
                                              "BlastParalog"};
  std::vector<std::string> search_out;
  for (std::size_t i = 0; i < p.partitions; ++i) {
    for (const char* family : kSearches) {
      TaskSpec t;
      t.name = strformat("%s-%zu", family, i);
      t.stage = family;
      t.cpu_seconds = rng.uniform(p.blast_cpu_min, p.blast_cpu_max);
      t.inputs.push_back(strformat("/raw/genome-part-%zu", i));  // external
      const std::string out = strformat("/sipht/%s-%zu", family, i);
      t.outputs.push_back({out, p.blast_out_bytes});
      t.io.extra_requests_per_mib = 20.0;  // BLAST-family chatty I/O
      search_out.push_back(out);
      wf.tasks.push_back(std::move(t));
    }
  }
  // ...one long sRNA prediction over everything...
  TaskSpec srna;
  srna.name = "SRNA";
  srna.stage = "SRNA";
  srna.cpu_seconds = p.srna_cpu;
  srna.inputs = search_out;
  srna.outputs.push_back({"/sipht/srna", 64 * units::MiB});
  wf.tasks.push_back(std::move(srna));
  // ...and a final annotation.
  TaskSpec annot;
  annot.name = "Annotate";
  annot.stage = "Annotate";
  annot.cpu_seconds = p.annotate_cpu;
  annot.inputs.push_back("/sipht/srna");
  annot.outputs.push_back({"/sipht/annotations", 16 * units::MiB});
  wf.tasks.push_back(std::move(annot));
  return wf;
}

Workflow make_epigenomics(const EpigenomicsParams& p, Rng& rng) {
  Workflow wf;
  wf.name = "epigenomics";
  std::vector<std::string> lane_bams;
  for (std::size_t lane = 0; lane < p.lanes; ++lane) {
    std::vector<std::string> mapped;
    for (std::size_t c = 0; c < p.chunks_per_lane; ++c) {
      // filterContams -> sol2sanger -> fastq2bfq -> map: a chain per chunk.
      const std::string base = strformat("/epi/l%zu-c%zu", lane, c);
      TaskSpec filter;
      filter.name = strformat("filter-%zu-%zu", lane, c);
      filter.stage = "filter";
      filter.cpu_seconds = rng.uniform(5.0, 15.0);
      filter.inputs.push_back(strformat("/raw/lane%zu-chunk%zu", lane, c));
      filter.outputs.push_back({base + ".filtered", p.chunk_bytes});
      wf.tasks.push_back(std::move(filter));

      TaskSpec conv;
      conv.name = strformat("fastq2bfq-%zu-%zu", lane, c);
      conv.stage = "fastq2bfq";
      conv.cpu_seconds = rng.uniform(3.0, 8.0);
      conv.inputs.push_back(base + ".filtered");
      conv.outputs.push_back({base + ".bfq", p.chunk_bytes / 2});
      wf.tasks.push_back(std::move(conv));

      TaskSpec map;
      map.name = strformat("map-%zu-%zu", lane, c);
      map.stage = "map";
      map.cpu_seconds = rng.uniform(p.map_cpu_min, p.map_cpu_max);
      map.inputs.push_back(base + ".bfq");
      map.outputs.push_back({base + ".bam", p.chunk_bytes / 2});
      mapped.push_back(base + ".bam");
      wf.tasks.push_back(std::move(map));
    }
    TaskSpec merge;
    merge.name = strformat("mapMerge-%zu", lane);
    merge.stage = "mapMerge";
    merge.cpu_seconds = p.merge_cpu;
    merge.inputs = mapped;
    const std::string bam = strformat("/epi/lane-%zu.bam", lane);
    merge.outputs.push_back(
        {bam, p.chunk_bytes * p.chunks_per_lane / 2});
    lane_bams.push_back(bam);
    wf.tasks.push_back(std::move(merge));
  }
  TaskSpec index;
  index.name = "mapIndex";
  index.stage = "mapIndex";
  index.cpu_seconds = p.index_cpu;
  index.inputs = lane_bams;
  index.outputs.push_back({"/epi/genome-index", 256 * units::MiB});
  wf.tasks.push_back(std::move(index));
  return wf;
}

Workflow make_fork_join(std::size_t width, double task_cpu,
                        Bytes file_bytes) {
  Workflow wf;
  wf.name = "fork-join";
  {
    TaskSpec t;
    t.name = "source";
    t.stage = "source";
    t.cpu_seconds = task_cpu;
    for (std::size_t i = 0; i < width; ++i)
      t.outputs.push_back({strformat("/fj/in-%zu", i), file_bytes});
    wf.tasks.push_back(std::move(t));
  }
  for (std::size_t i = 0; i < width; ++i) {
    TaskSpec t;
    t.name = strformat("worker-%zu", i);
    t.stage = "worker";
    t.cpu_seconds = task_cpu;
    t.inputs.push_back(strformat("/fj/in-%zu", i));
    t.outputs.push_back({strformat("/fj/out-%zu", i), file_bytes});
    wf.tasks.push_back(std::move(t));
  }
  {
    TaskSpec t;
    t.name = "sink";
    t.stage = "sink";
    t.cpu_seconds = task_cpu;
    for (std::size_t i = 0; i < width; ++i)
      t.inputs.push_back(strformat("/fj/out-%zu", i));
    t.outputs.push_back({"/fj/final", file_bytes});
    wf.tasks.push_back(std::move(t));
  }
  return wf;
}

}  // namespace memfss::workflow
