#include "workflow/dag.hpp"

#include <algorithm>
#include <deque>

#include "common/str.hpp"

namespace memfss::workflow {

Bytes Workflow::total_output_bytes() const {
  Bytes total = 0;
  for (const auto& t : tasks)
    for (const auto& o : t.outputs) total += o.bytes;
  return total;
}

double Workflow::total_cpu_seconds() const {
  double total = 0.0;
  for (const auto& t : tasks) total += t.cpu_seconds;
  return total;
}

Result<Dag> Dag::build(const Workflow& wf) {
  const std::size_t n = wf.tasks.size();
  std::map<std::string, std::size_t> producer;
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& o : wf.tasks[i].outputs) {
      auto [it, inserted] = producer.emplace(o.path, i);
      if (!inserted)
        return Error{Errc::invalid_argument,
                     "file has two producers: " + o.path};
    }
  }

  Dag dag;
  dag.deps_.resize(n);
  dag.children_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& in : wf.tasks[i].inputs) {
      auto it = producer.find(in);
      if (it == producer.end()) continue;  // external input (staged in)
      const std::size_t p = it->second;
      if (p == i)
        return Error{Errc::invalid_argument,
                     "task reads its own output: " + in};
      // Dedup multi-file edges between the same pair.
      if (std::find(dag.deps_[i].begin(), dag.deps_[i].end(), p) ==
          dag.deps_[i].end()) {
        dag.deps_[i].push_back(p);
        dag.children_[p].push_back(i);
      }
    }
  }

  // Kahn's algorithm; detects cycles and records a deterministic order.
  std::vector<std::size_t> indeg(n, 0);
  for (std::size_t i = 0; i < n; ++i) indeg[i] = dag.deps_[i].size();
  std::deque<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i)
    if (indeg[i] == 0) ready.push_back(i);
  dag.topo_.reserve(n);
  while (!ready.empty()) {
    const std::size_t t = ready.front();
    ready.pop_front();
    dag.topo_.push_back(t);
    for (std::size_t c : dag.children_[t]) {
      if (--indeg[c] == 0) ready.push_back(c);
    }
  }
  if (dag.topo_.size() != n)
    return Error{Errc::invalid_argument, "workflow DAG has a cycle"};
  return dag;
}

std::vector<std::size_t> Dag::roots() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < deps_.size(); ++i)
    if (deps_[i].empty()) out.push_back(i);
  return out;
}

double Dag::critical_path_seconds(const Workflow& wf) const {
  std::vector<double> finish(deps_.size(), 0.0);
  double best = 0.0;
  for (std::size_t t : topo_) {
    double start = 0.0;
    for (std::size_t d : deps_[t]) start = std::max(start, finish[d]);
    finish[t] = start + wf.tasks[t].cpu_seconds;
    best = std::max(best, finish[t]);
  }
  return best;
}

std::size_t Dag::max_stage_width(const Workflow& wf) const {
  // Level = longest dependency chain length; width of the widest level.
  std::vector<std::size_t> level(deps_.size(), 0);
  std::map<std::size_t, std::size_t> width;
  std::size_t best = 0;
  for (std::size_t t : topo_) {
    std::size_t lv = 0;
    for (std::size_t d : deps_[t]) lv = std::max(lv, level[d] + 1);
    level[t] = lv;
    best = std::max(best, ++width[lv]);
  }
  (void)wf;
  return best;
}

}  // namespace memfss::workflow
