// Workflow trace format: load/save workflows as plain text, so users can
// run their own DAGs (e.g. exported from Pegasus DAX files) through the
// engine instead of the built-in generators.
//
// Format (line-oriented, '#' comments, blank lines ignored):
//
//   workflow <name>
//   task <name> stage=<label> cpu=<seconds> [cores=<n>] [reqs_per_mib=<x>]
//   in <path>                # input of the most recent task
//   out <path> <size>        # output of the most recent task
//
// Sizes accept K/M/G/T suffixes (binary units): "128M", "4G", "512".
// Dependencies are implied by file producer/consumer relations, exactly
// as in the in-memory model.
#pragma once

#include <iosfwd>
#include <string>

#include "common/result.hpp"
#include "workflow/dag.hpp"

namespace memfss::workflow {

/// Parse a trace from a stream. Fails with invalid_argument on malformed
/// lines (the message names the line number).
Result<Workflow> parse_workflow(std::istream& in);

/// Parse a trace from a string.
Result<Workflow> parse_workflow_text(const std::string& text);

/// Load from a file (not_found if unreadable).
Result<Workflow> load_workflow_file(const std::string& path);

/// Serialize to the same format (round-trips through parse_workflow).
std::string to_trace(const Workflow& wf);

/// Save to a file.
Status save_workflow_file(const Workflow& wf, const std::string& path);

/// Parse "128M"/"4G"/"512" into bytes.
Result<Bytes> parse_size(const std::string& token);

}  // namespace memfss::workflow
