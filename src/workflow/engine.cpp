#include "workflow/engine.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <set>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/str.hpp"
#include "fs/client.hpp"
#include "sim/sync.hpp"

namespace memfss::workflow {

struct Engine::RunState {
  RunState(sim::Simulator& sim, std::size_t n)
      : done_ch(sim), indeg(n, 0) {}
  Workflow wf;
  Dag dag;
  std::set<std::string> produced;  ///< paths written by some task
  sim::Channel<std::size_t> done_ch;
  std::vector<std::size_t> indeg;
  std::deque<std::size_t> ready;
  std::vector<double> free_slots;  ///< per worker index
  Report report;
  SimTime start = 0.0;
};

Engine::Engine(cluster::Cluster& cluster, fs::FileSystem& fs,
               std::vector<NodeId> worker_nodes, EngineConfig config)
    : cluster_(cluster),
      fs_(fs),
      workers_(std::move(worker_nodes)),
      config_(config) {
  assert(!workers_.empty());
}

sim::Task<> Engine::run_task(RunState& st, std::size_t idx, NodeId node) {
  const TaskSpec& spec = st.wf.tasks[idx];
  const SimTime t0 = cluster_.sim().now();
  fs::Client client = fs_.client(node);

  // Read every FS-internal input (external inputs are staged outside).
  for (const auto& in : spec.inputs) {
    if (!st.produced.count(in)) continue;
    auto r = co_await client.read_file(in, spec.io.extra_requests_per_mib);
    if (!r.ok()) {
      if (st.report.status.ok()) st.report.status = r.error();
    } else {
      st.report.bytes_read += r.value();
    }
  }

  // Compute.
  if (spec.cpu_seconds > 0.0)
    co_await cluster_.node(node).cpu().consume(spec.cpu_seconds, spec.cores);

  // Write outputs.
  for (const auto& out : spec.outputs) {
    auto s = co_await client.write_file(out.path, out.bytes, idx,
                                        spec.io.extra_requests_per_mib);
    if (!s.ok()) {
      if (st.report.status.ok()) st.report.status = s;
    } else {
      st.report.bytes_written += out.bytes;
    }
  }

  st.report.stage_durations[spec.stage].add(cluster_.sim().now() - t0);
  ++st.report.tasks_run;
  st.done_ch.push(idx);
}

sim::Task<Report> Engine::run(Workflow wf) {
  auto& sim = cluster_.sim();
  RunState st(sim, wf.tasks.size());
  auto dag = Dag::build(wf);
  if (!dag.ok()) {
    Report r;
    r.status = dag.error();
    co_return r;
  }
  st.wf = std::move(wf);
  st.dag = std::move(dag).value();
  st.start = sim.now();

  for (const auto& t : st.wf.tasks)
    for (const auto& o : t.outputs) st.produced.insert(o.path);

  // Pre-create every output directory through one client.
  {
    std::set<std::string> dirs;
    for (const auto& p : st.produced) {
      const auto pos = p.find_last_of('/');
      if (pos != std::string::npos && pos > 0) dirs.insert(p.substr(0, pos));
    }
    fs::Client client = fs_.client(workers_.front());
    for (const auto& d : dirs) {
      auto s = co_await client.mkdirs(d);
      if (!s.ok() && s.code() != Errc::already_exists) {
        Report r;
        r.status = s;
        co_return r;
      }
    }
  }

  const std::size_t n = st.wf.tasks.size();
  for (std::size_t i = 0; i < n; ++i) {
    st.indeg[i] = st.dag.dependencies(i).size();
    if (st.indeg[i] == 0) st.ready.push_back(i);
  }
  st.free_slots.resize(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    st.free_slots[w] = config_.slots_per_node > 0
                           ? config_.slots_per_node
                           : cluster_.node(workers_[w]).spec().cores;
  }
  std::vector<std::size_t> task_worker(n, 0);

  Rng rng(config_.seed);
  std::size_t rr_next = 0;
  auto pick_worker = [&]() -> std::ptrdiff_t {
    switch (config_.slot_policy) {
      case SlotPolicy::least_loaded: {
        std::size_t best = 0;
        for (std::size_t w = 1; w < workers_.size(); ++w)
          if (st.free_slots[w] > st.free_slots[best]) best = w;
        return st.free_slots[best] >= 1.0 ? std::ptrdiff_t(best) : -1;
      }
      case SlotPolicy::round_robin: {
        for (std::size_t probe = 0; probe < workers_.size(); ++probe) {
          const std::size_t w = (rr_next + probe) % workers_.size();
          if (st.free_slots[w] >= 1.0) {
            rr_next = (w + 1) % workers_.size();
            return std::ptrdiff_t(w);
          }
        }
        return -1;
      }
      case SlotPolicy::random: {
        std::vector<std::size_t> free;
        for (std::size_t w = 0; w < workers_.size(); ++w)
          if (st.free_slots[w] >= 1.0) free.push_back(w);
        if (free.empty()) return -1;
        return std::ptrdiff_t(
            free[rng.uniform_u64(0, free.size() - 1)]);
      }
      case SlotPolicy::pack_first: {
        for (std::size_t w = 0; w < workers_.size(); ++w)
          if (st.free_slots[w] >= 1.0) return std::ptrdiff_t(w);
        return -1;
      }
    }
    return -1;
  };

  auto launch_ready = [&] {
    while (!st.ready.empty()) {
      const std::ptrdiff_t chosen = pick_worker();
      if (chosen < 0) break;  // everything busy
      const auto best = std::size_t(chosen);
      const std::size_t idx = st.ready.front();
      st.ready.pop_front();
      st.free_slots[best] -= 1.0;
      task_worker[idx] = best;
      sim.spawn(run_task(st, idx, workers_[best]));
    }
  };

  launch_ready();
  std::size_t remaining = n;
  while (remaining > 0) {
    const std::size_t idx = co_await st.done_ch.pop();
    --remaining;
    st.free_slots[task_worker[idx]] += 1.0;
    for (std::size_t c : st.dag.dependents(idx)) {
      if (--st.indeg[c] == 0) st.ready.push_back(c);
    }
    launch_ready();
  }

  st.report.makespan = sim.now() - st.start;
  co_return std::move(st.report);
}

}  // namespace memfss::workflow
