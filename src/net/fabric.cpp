#include "net/fabric.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "common/str.hpp"

namespace memfss::net {

namespace {
constexpr double kWorkEpsilon = 1e-6;  // bytes; flows are >= 1 byte
constexpr double kRateEpsilon = 1e-9;

// splitmix64 finalizer (net stays independent of the hash module; this
// map only needs scatter, not placement-grade hashing).
constexpr std::uint64_t mix_bits(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}
}  // namespace

std::size_t Fabric::BundleKeyHash::operator()(const BundleKey& k) const {
  const std::uint64_t ports =
      (static_cast<std::uint64_t>(k.src) << 32) | k.dst;
  const std::uint64_t rest =
      std::bit_cast<std::uint64_t>(k.cap) ^
      static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(k.group));
  return static_cast<std::size_t>(mix_bits(ports ^ mix_bits(rest)));
}

Fabric::Fabric(sim::Simulator& sim, std::size_t node_count, NicSpec spec)
    : sim_(sim),
      nics_(node_count, spec),
      up_rate_(node_count, 0.0),
      down_rate_(node_count, 0.0),
      up_util_(node_count),
      down_util_(node_count),
      wf_up_res_(node_count, 0.0),
      wf_down_res_(node_count, 0.0),
      wf_up_cnt_(node_count, 0),
      wf_down_cnt_(node_count, 0) {
  const SimTime now = sim_.now();
  for (std::size_t n = 0; n < node_count; ++n) {
    up_util_[n].set(now, 0.0);
    down_util_[n].set(now, 0.0);
  }
  last_update_ = now;
}

Fabric::~Fabric() {
  if (completion_event_) sim_.cancel(completion_event_);
}

void Fabric::set_nic(NodeId n, NicSpec spec) {
  settle();
  nics_[n] = spec;
  recompute();
}

void Fabric::set_observability(obs::Observability* o) {
  obs_ = o;
  if (!obs_) {
    flow_lifetime_ = flow_fair_share_ = nullptr;
    msg_count_ = nullptr;
    return;
  }
  flow_lifetime_ = &obs_->metrics.histogram("net.flow.lifetime");
  flow_fair_share_ = &obs_->metrics.histogram("net.flow.rate_vs_best");
  msg_count_ = &obs_->metrics.counter("net.msg.count");
}

Fabric::Bundle& Fabric::join_bundle(NodeId src, NodeId dst, double cap,
                                    CapGroup* group) {
  Bundle& b = bundles_[BundleKey{src, dst, cap, group}];
  if (b.count++ == 0) {
    b.src = src;
    b.dst = dst;
    b.cap = cap;
    b.group = group;
  }
  return b;
}

void Fabric::leave_bundle(Bundle& b) {
  if (--b.count == 0)
    bundles_.erase(BundleKey{b.src, b.dst, b.cap, b.group});
}

sim::Task<> Fabric::transfer(NodeId src, NodeId dst, Bytes size,
                             Rate flow_cap, CapGroup* group) {
  assert(src < node_count() && dst < node_count());
  const bool bulk = size >= kObsMinFlowBytes;
  if (obs_ && !bulk) msg_count_->inc();
  const SimTime t0 = sim_.now();
  // Wire latency before the first byte lands.
  co_await sim_.delay(nics_[src].latency);
  if (size == 0) co_return;
  bytes_moved_ += static_cast<double>(size);
  if (src == dst) co_return;  // loopback: memory copy, not modelled

  settle();
  flows_.emplace_back(sim_, src, dst, static_cast<double>(size), flow_cap,
                      group);
  auto it = std::prev(flows_.end());
  it->bundle = &join_bundle(src, dst, flow_cap, group);
  schedule_recompute();
  co_await it->done;

  if (obs_ && bulk) {
    const SimTime life = sim_.now() - t0;
    flow_lifetime_->add(life);
    // Achieved rate vs. the best this flow could ever get: the tightest
    // of its own cap and the two NIC ports. < 1 means it was sharing.
    const Rate best =
        std::min({flow_cap, nics_[src].up, nics_[dst].down});
    const SimTime xfer = life - nics_[src].latency;
    if (xfer > 0.0 && best > 0.0 && std::isfinite(best))
      flow_fair_share_->add((static_cast<double>(size) / xfer) / best);
    if (obs_->tracer.enabled(obs::Component::net))
      obs_->tracer.span(obs::Component::net, src, "net.flow", t0,
                        strformat("dst=%u bytes=%llu", dst,
                                  (unsigned long long)size));
  }
}

void Fabric::mutate_cuts(bool cut, NodeId src, NodeId dst, bool oneway) {
  settle();
  if (cut) {
    cuts_.insert(link_key(src, dst));
    if (!oneway) cuts_.insert(link_key(dst, src));
  } else {
    cuts_.erase(link_key(src, dst));
    if (!oneway) cuts_.erase(link_key(dst, src));
  }
  if (obs_)
    obs_->metrics.counter(cut ? "net.link.cut" : "net.link.heal").inc();
  recompute();
}

void Fabric::cut_link(NodeId src, NodeId dst, bool oneway) {
  assert(src < node_count() && dst < node_count());
  mutate_cuts(true, src, dst, oneway);
}

void Fabric::heal_link(NodeId src, NodeId dst, bool oneway) {
  mutate_cuts(false, src, dst, oneway);
}

void Fabric::cut_bisection(const std::vector<NodeId>& a,
                           const std::vector<NodeId>& b) {
  settle();
  for (NodeId x : a)
    for (NodeId y : b) {
      if (x == y) continue;
      cuts_.insert(link_key(x, y));
      cuts_.insert(link_key(y, x));
    }
  if (obs_) obs_->metrics.counter("net.link.cut").inc();
  recompute();
}

void Fabric::isolate(NodeId n) {
  settle();
  for (std::size_t m = 0; m < node_count(); ++m) {
    if (m == n) continue;
    cuts_.insert(link_key(n, static_cast<NodeId>(m)));
    cuts_.insert(link_key(static_cast<NodeId>(m), n));
  }
  if (obs_) obs_->metrics.counter("net.link.cut").inc();
  recompute();
}

void Fabric::heal_node(NodeId n) {
  settle();
  for (std::size_t m = 0; m < node_count(); ++m) {
    if (m == n) continue;
    cuts_.erase(link_key(n, static_cast<NodeId>(m)));
    cuts_.erase(link_key(static_cast<NodeId>(m), n));
  }
  if (obs_) obs_->metrics.counter("net.link.heal").inc();
  recompute();
}

void Fabric::heal_all() {
  if (cuts_.empty()) return;
  settle();
  cuts_.clear();
  if (obs_) obs_->metrics.counter("net.link.heal").inc();
  recompute();
}

void Fabric::schedule_recompute() {
  if (recompute_pending_) return;
  recompute_pending_ = true;
  sim_.schedule(0.0, [this] {
    recompute_pending_ = false;
    settle();
    recompute();
  });
}

sim::Task<> Fabric::message(NodeId src, NodeId dst, Bytes size) {
  co_await transfer(src, dst, size);
}

void Fabric::settle() {
  const SimTime now = sim_.now();
  const double dt = now - last_update_;
  if (dt > 0.0) {
    for (auto& f : flows_)
      f.remaining = std::max(0.0, f.remaining - f.rate * dt);
  }
  last_update_ = now;
}

std::vector<Fabric::FlowInfo> Fabric::flow_snapshot() const {
  std::vector<FlowInfo> out;
  out.reserve(flows_.size());
  for (const auto& f : flows_)
    out.push_back({f.src, f.dst, f.cap, f.group, f.rate, f.remaining});
  return out;
}

void Fabric::recompute() {
  // Complete finished flows: every flow whose work hit zero by now (one
  // horizon event can retire a whole batch of same-rate flows).
  // (trigger() moves the waiter to the scheduler and releases all
  // references to the Event, so erase is safe.)
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->remaining <= kWorkEpsilon) {
      it->done.trigger();
      leave_bundle(*it->bundle);
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }

  // Progressive filling over bundles. All unfrozen bundles share the fill
  // level `level`; per-port residuals/counts live in dense scratch arrays
  // but only the ports on the active lists are touched, so one pass costs
  // O(rounds x (active_ports + groups + bundles)) -- the per-flow work is
  // the two linear sweeps (settle above, rate/telemetry below).
  ++wf_stamp_;
  wf_up_active_.clear();
  wf_down_active_.clear();
  wf_groups_.clear();
  wf_unfrozen_.clear();
  for (auto& [key, b] : bundles_) {
    b.frozen = false;
    b.rate = 0.0;
    // Flows across a cut link stall: rate 0, no claim on any port or
    // group, no completion horizon. They resume on the heal's recompute.
    if (!cuts_.empty() && cuts_.contains(link_key(b.src, b.dst))) {
      b.frozen = true;
      continue;
    }
    if (wf_up_cnt_[b.src] == 0) {
      wf_up_active_.push_back(b.src);
      wf_up_res_[b.src] = nics_[b.src].up;
    }
    wf_up_cnt_[b.src] += b.count;
    if (wf_down_cnt_[b.dst] == 0) {
      wf_down_active_.push_back(b.dst);
      wf_down_res_[b.dst] = nics_[b.dst].down;
    }
    wf_down_cnt_[b.dst] += b.count;
    if (b.group) {
      if (b.group->stamp_ != wf_stamp_) {
        b.group->stamp_ = wf_stamp_;
        b.group->residual_ = b.group->limit();
        b.group->count_ = 0;
        wf_groups_.push_back(b.group);
      }
      b.group->count_ += b.count;
    }
    wf_unfrozen_.push_back(&b);
  }

  double level = 0.0;
  while (!wf_unfrozen_.empty()) {
    // Smallest headroom per unfrozen flow across all constraints. These
    // are the same minima the per-flow loop computed: a port's count is
    // the number of unfrozen flows through it (bundle multiplicities
    // summed), and a bundle's cap headroom is its members' cap headroom.
    double delta = std::numeric_limits<double>::infinity();
    for (NodeId p : wf_up_active_) {
      if (wf_up_cnt_[p] > 0)
        delta = std::min(delta,
                         wf_up_res_[p] / static_cast<double>(wf_up_cnt_[p]));
    }
    for (NodeId p : wf_down_active_) {
      if (wf_down_cnt_[p] > 0)
        delta = std::min(
            delta, wf_down_res_[p] / static_cast<double>(wf_down_cnt_[p]));
    }
    for (CapGroup* g : wf_groups_) {
      if (g->count_ > 0)
        delta =
            std::min(delta, g->residual_ / static_cast<double>(g->count_));
    }
    for (const Bundle* b : wf_unfrozen_) {
      if (std::isfinite(b->cap)) delta = std::min(delta, b->cap - level);
    }
    if (!std::isfinite(delta)) break;  // no constraints at all
    delta = std::max(delta, 0.0);
    level += delta;

    // Charge the raise against every constraint carrying unfrozen flows.
    for (NodeId p : wf_up_active_)
      wf_up_res_[p] -= delta * static_cast<double>(wf_up_cnt_[p]);
    for (NodeId p : wf_down_active_)
      wf_down_res_[p] -= delta * static_cast<double>(wf_down_cnt_[p]);
    for (CapGroup* g : wf_groups_)
      g->residual_ -= delta * static_cast<double>(g->count_);

    // Freeze bundles whose path hit a saturated constraint (or own cap).
    // The conditions depend only on bundle key fields, so member flows
    // always freeze together, at the same level the per-flow loop gave.
    for (std::size_t i = 0; i < wf_unfrozen_.size();) {
      Bundle* b = wf_unfrozen_[i];
      const bool up_sat =
          wf_up_res_[b->src] <= kRateEpsilon * nics_[b->src].up;
      const bool down_sat =
          wf_down_res_[b->dst] <= kRateEpsilon * nics_[b->dst].down;
      const bool grp_sat =
          b->group &&
          b->group->residual_ <= kRateEpsilon * (b->group->limit() + 1.0);
      const bool cap_sat =
          std::isfinite(b->cap) &&
          level >= b->cap - kRateEpsilon * std::max(1.0, b->cap);
      if (up_sat || down_sat || grp_sat || cap_sat) {
        b->frozen = true;
        b->rate = level;
        wf_up_cnt_[b->src] -= b->count;
        wf_down_cnt_[b->dst] -= b->count;
        if (b->group) b->group->count_ -= b->count;
        wf_unfrozen_[i] = wf_unfrozen_.back();
        wf_unfrozen_.pop_back();
      } else {
        ++i;
      }
    }
  }
  // Any bundle still unfrozen (unconstrained) keeps rate == level.
  for (Bundle* b : wf_unfrozen_) b->rate = level;

  // Reset the port scratch counts for the next pass (freezes zero most of
  // them already; the unconstrained case leaves nonzero counts behind).
  for (NodeId p : wf_up_active_) wf_up_cnt_[p] = 0;
  for (NodeId p : wf_down_active_) wf_down_cnt_[p] = 0;

  // Refresh per-flow rates and per-node telemetry (flow arrival order, so
  // the floating-point sums match the per-flow computation bit for bit).
  const SimTime now = sim_.now();
  std::fill(up_rate_.begin(), up_rate_.end(), 0.0);
  std::fill(down_rate_.begin(), down_rate_.end(), 0.0);
  for (auto& f : flows_) {
    f.rate = f.bundle->rate;
    up_rate_[f.src] += f.rate;
    down_rate_[f.dst] += f.rate;
  }
  const std::size_t n = node_count();
  for (std::size_t i = 0; i < n; ++i) {
    up_util_[i].set(now, nics_[i].up > 0 ? up_rate_[i] / nics_[i].up : 0.0);
    down_util_[i].set(now,
                      nics_[i].down > 0 ? down_rate_[i] / nics_[i].down : 0.0);
  }

  // Reschedule the next completion.
  if (completion_event_) {
    sim_.cancel(completion_event_);
    completion_event_ = 0;
  }
  double horizon = std::numeric_limits<double>::infinity();
  for (const auto& f : flows_)
    if (f.rate > 0.0) horizon = std::min(horizon, f.remaining / f.rate);
  if (std::isfinite(horizon)) {
    // See FluidResource::recompute: sub-resolution horizons would fire
    // with zero clock advance and livelock the event loop.
    const double min_dt = std::max(1e-12, sim_.now() * 1e-12);
    horizon = std::max(horizon, min_dt);
    completion_event_ = sim_.schedule(horizon, [this] {
      completion_event_ = 0;
      settle();
      recompute();
    });
  }
}

}  // namespace memfss::net
