#include "net/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "common/str.hpp"

namespace memfss::net {

namespace {
constexpr double kWorkEpsilon = 1e-6;  // bytes; flows are >= 1 byte
constexpr double kRateEpsilon = 1e-9;
}  // namespace

Fabric::Fabric(sim::Simulator& sim, std::size_t node_count, NicSpec spec)
    : sim_(sim),
      nics_(node_count, spec),
      up_rate_(node_count, 0.0),
      down_rate_(node_count, 0.0),
      up_util_(node_count),
      down_util_(node_count) {
  const SimTime now = sim_.now();
  for (std::size_t n = 0; n < node_count; ++n) {
    up_util_[n].set(now, 0.0);
    down_util_[n].set(now, 0.0);
  }
  last_update_ = now;
}

Fabric::~Fabric() {
  if (completion_event_) sim_.cancel(completion_event_);
}

void Fabric::set_nic(NodeId n, NicSpec spec) {
  settle();
  nics_[n] = spec;
  recompute();
}

void Fabric::set_observability(obs::Observability* o) {
  obs_ = o;
  if (!obs_) {
    flow_lifetime_ = flow_fair_share_ = nullptr;
    msg_count_ = nullptr;
    return;
  }
  flow_lifetime_ = &obs_->metrics.histogram("net.flow.lifetime");
  flow_fair_share_ = &obs_->metrics.histogram("net.flow.rate_vs_best");
  msg_count_ = &obs_->metrics.counter("net.msg.count");
}

sim::Task<> Fabric::transfer(NodeId src, NodeId dst, Bytes size,
                             Rate flow_cap, CapGroup* group) {
  assert(src < node_count() && dst < node_count());
  const bool bulk = size >= kObsMinFlowBytes;
  if (obs_ && !bulk) msg_count_->inc();
  const SimTime t0 = sim_.now();
  // Wire latency before the first byte lands.
  co_await sim_.delay(nics_[src].latency);
  if (size == 0) co_return;
  bytes_moved_ += static_cast<double>(size);
  if (src == dst) co_return;  // loopback: memory copy, not modelled

  settle();
  flows_.emplace_back(sim_, src, dst, static_cast<double>(size), flow_cap,
                      group);
  auto it = std::prev(flows_.end());
  schedule_recompute();
  co_await it->done;

  if (obs_ && bulk) {
    const SimTime life = sim_.now() - t0;
    flow_lifetime_->add(life);
    // Achieved rate vs. the best this flow could ever get: the tightest
    // of its own cap and the two NIC ports. < 1 means it was sharing.
    const Rate best =
        std::min({flow_cap, nics_[src].up, nics_[dst].down});
    const SimTime xfer = life - nics_[src].latency;
    if (xfer > 0.0 && best > 0.0 && std::isfinite(best))
      flow_fair_share_->add((static_cast<double>(size) / xfer) / best);
    if (obs_->tracer.enabled(obs::Component::net))
      obs_->tracer.span(obs::Component::net, src, "net.flow", t0,
                        strformat("dst=%u bytes=%llu", dst,
                                  (unsigned long long)size));
  }
}

void Fabric::schedule_recompute() {
  if (recompute_pending_) return;
  recompute_pending_ = true;
  sim_.schedule(0.0, [this] {
    recompute_pending_ = false;
    settle();
    recompute();
  });
}

sim::Task<> Fabric::message(NodeId src, NodeId dst, Bytes size) {
  co_await transfer(src, dst, size);
}

void Fabric::settle() {
  const SimTime now = sim_.now();
  const double dt = now - last_update_;
  if (dt > 0.0) {
    for (auto& f : flows_)
      f.remaining = std::max(0.0, f.remaining - f.rate * dt);
  }
  last_update_ = now;
}

void Fabric::recompute() {
  // Complete finished flows. (trigger() moves the waiter to the scheduler
  // and releases all references to the Event, so erase is safe.)
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->remaining <= kWorkEpsilon) {
      it->done.trigger();
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }

  // Progressive filling. All unfrozen flows share the fill level `level`.
  const std::size_t n = node_count();
  std::vector<double> up_res(n), down_res(n);
  std::vector<std::size_t> up_cnt(n, 0), down_cnt(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    up_res[i] = nics_[i].up;
    down_res[i] = nics_[i].down;
  }
  std::unordered_set<CapGroup*> groups;
  for (auto& f : flows_) {
    f.frozen = false;
    f.rate = 0.0;
    ++up_cnt[f.src];
    ++down_cnt[f.dst];
    if (f.group) groups.insert(f.group);
  }
  for (CapGroup* g : groups) {
    g->residual_ = g->limit();
    g->count_ = 0;
  }
  for (auto& f : flows_)
    if (f.group) ++f.group->count_;

  std::size_t unfrozen = flows_.size();
  double level = 0.0;
  while (unfrozen > 0) {
    // Smallest headroom per unfrozen flow across all constraints.
    double delta = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (up_cnt[i] > 0)
        delta = std::min(delta, up_res[i] / static_cast<double>(up_cnt[i]));
      if (down_cnt[i] > 0)
        delta =
            std::min(delta, down_res[i] / static_cast<double>(down_cnt[i]));
    }
    for (CapGroup* g : groups) {
      if (g->count_ > 0)
        delta =
            std::min(delta, g->residual_ / static_cast<double>(g->count_));
    }
    for (const auto& f : flows_) {
      if (!f.frozen && std::isfinite(f.cap))
        delta = std::min(delta, f.cap - level);
    }
    if (!std::isfinite(delta)) break;  // no constraints at all (n == 0)
    delta = std::max(delta, 0.0);
    level += delta;

    // Charge the raise against every constraint.
    for (std::size_t i = 0; i < n; ++i) {
      up_res[i] -= delta * static_cast<double>(up_cnt[i]);
      down_res[i] -= delta * static_cast<double>(down_cnt[i]);
    }
    for (CapGroup* g : groups)
      g->residual_ -= delta * static_cast<double>(g->count_);

    // Freeze flows whose path hit a saturated constraint (or own cap).
    for (auto& f : flows_) {
      if (f.frozen) continue;
      const bool up_sat = up_res[f.src] <= kRateEpsilon * nics_[f.src].up;
      const bool down_sat =
          down_res[f.dst] <= kRateEpsilon * nics_[f.dst].down;
      const bool grp_sat =
          f.group && f.group->residual_ <= kRateEpsilon * (f.group->limit() + 1.0);
      const bool cap_sat =
          std::isfinite(f.cap) &&
          level >= f.cap - kRateEpsilon * std::max(1.0, f.cap);
      if (up_sat || down_sat || grp_sat || cap_sat) {
        f.frozen = true;
        f.rate = level;
        --unfrozen;
        --up_cnt[f.src];
        --down_cnt[f.dst];
        if (f.group) --f.group->count_;
      }
    }
  }
  // Any flow still unfrozen (unconstrained) keeps rate == level.
  for (auto& f : flows_)
    if (!f.frozen) f.rate = level;

  // Refresh per-node telemetry.
  const SimTime now = sim_.now();
  std::fill(up_rate_.begin(), up_rate_.end(), 0.0);
  std::fill(down_rate_.begin(), down_rate_.end(), 0.0);
  for (const auto& f : flows_) {
    up_rate_[f.src] += f.rate;
    down_rate_[f.dst] += f.rate;
  }
  for (std::size_t i = 0; i < n; ++i) {
    up_util_[i].set(now, nics_[i].up > 0 ? up_rate_[i] / nics_[i].up : 0.0);
    down_util_[i].set(now,
                      nics_[i].down > 0 ? down_rate_[i] / nics_[i].down : 0.0);
  }

  // Reschedule the next completion.
  if (completion_event_) {
    sim_.cancel(completion_event_);
    completion_event_ = 0;
  }
  double horizon = std::numeric_limits<double>::infinity();
  for (const auto& f : flows_)
    if (f.rate > 0.0) horizon = std::min(horizon, f.remaining / f.rate);
  if (std::isfinite(horizon)) {
    // See FluidResource::recompute: sub-resolution horizons would fire
    // with zero clock advance and livelock the event loop.
    const double min_dt = std::max(1e-12, sim_.now() * 1e-12);
    horizon = std::max(horizon, min_dt);
    completion_event_ = sim_.schedule(horizon, [this] {
      completion_event_ = 0;
      settle();
      recompute();
    });
  }
}

}  // namespace memfss::net
