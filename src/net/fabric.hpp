// Simulated cluster network fabric.
//
// Topology: full-bisection core (like DAS-5's FDR InfiniBand fat tree) --
// the only capacity constraints are each node's NIC uplink and downlink.
// Transfers are modelled as fluid flows; on every flow arrival/departure
// the fabric recomputes a global max-min fair allocation by progressive
// filling:
//
//   all unfrozen flows share one fill level l, raised until a link
//   saturates (or a flow hits its rate cap); flows crossing that link
//   freeze at l; repeat until every flow is frozen.
//
// Rate caps: a flow can carry (a) an individual cap and (b) a CapGroup --
// a shared ceiling over a set of flows, which is how the Linux-container
// bandwidth isolation of scavenged Redis processes (paper §III-F) is
// modelled: all scavenging flows into one victim node share one CapGroup.
//
// Per-node up/down utilization is tracked time-weighted; Fig. 2's
// bandwidth plots read these accumulators.
// Performance: flows identical in (src, dst, cap, group) -- e.g. the
// thousands of concurrent same-path stripe transfers of a dd bag -- are
// aggregated into *bundles* with a multiplicity count. Under max-min
// fairness such flows are interchangeable: they share one fill-level
// trajectory and freeze together, so the progressive-filling loop runs
// over bundles and the ports/groups they actually touch instead of
// rescanning every flow each round. Rates are provably (and bit-)
// identical to the per-flow computation; see DESIGN.md §9.
#pragma once

#include <cstdint>
#include <limits>
#include <list>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace memfss::net {

struct NicSpec {
  Rate up = 3e9;             ///< bytes/s (DAS-5 IPoIB ~ 3 GB/s)
  Rate down = 3e9;
  SimTime latency = 20e-6;   ///< one-way message latency (s)
};

/// Shared rate ceiling over a set of flows (container bandwidth cap).
class CapGroup {
 public:
  explicit CapGroup(Rate limit) : limit_(limit) {}
  Rate limit() const { return limit_; }
  void set_limit(Rate r) { limit_ = r; }

 private:
  friend class Fabric;
  Rate limit_;
  // Scratch fields used during progressive filling. `stamp_` marks the
  // filling pass that last initialized this group (first-touch reset).
  Rate residual_ = 0;
  std::size_t count_ = 0;
  std::uint64_t stamp_ = 0;
};

class Fabric {
 public:
  static constexpr Rate kUncapped = std::numeric_limits<Rate>::infinity();

  Fabric(sim::Simulator& sim, std::size_t node_count, NicSpec spec);
  ~Fabric();
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  std::size_t node_count() const { return nics_.size(); }
  const NicSpec& nic(NodeId n) const { return nics_[n]; }
  void set_nic(NodeId n, NicSpec spec);

  /// Attach the deployment's observability context (cluster::Cluster does
  /// this for clusters; standalone fabrics stay uninstrumented). Bulk
  /// flows >= kObsMinFlowBytes record a lifetime histogram, an
  /// achieved-vs-fair-rate histogram, and (when net tracing is enabled)
  /// one span per flow; smaller control messages only count.
  void set_observability(obs::Observability* o);

  /// Flows below this size are control messages: counted, not traced.
  static constexpr Bytes kObsMinFlowBytes = 4096;

  /// Bulk transfer of `size` bytes src -> dst. Completes when the last
  /// byte arrives (one latency charge + fluid transmission). Same-node
  /// transfers complete after a loopback latency only.
  sim::Task<> transfer(NodeId src, NodeId dst, Bytes size,
                       Rate flow_cap = kUncapped, CapGroup* group = nullptr);

  /// Small control message: one latency charge plus the (tiny) serialized
  /// size through the fluid model.
  sim::Task<> message(NodeId src, NodeId dst, Bytes size = 256);

  // --- link cuts (network partitions) ---------------------------------
  //
  // A cut is directional: cut_link(a, b, /*oneway=*/true) drops a -> b
  // while b -> a still delivers (the classic asymmetric-routing failure).
  // Flows already in flight across a cut link stall at rate 0 -- the
  // bytes are neither delivered nor lost -- and resume when the link
  // heals; clients observe the stall as an RPC timeout. Callers that
  // check reachable() before sending can fail fast with
  // Errc::unreachable instead. Cuts are a set, not a count: healing a
  // link clears it regardless of how many overlapping cuts named it.

  /// Drop src -> dst (and dst -> src unless `oneway`).
  void cut_link(NodeId src, NodeId dst, bool oneway = false);
  /// Cut every link between the two node sets, both directions -- a
  /// bisection of the fabric.
  void cut_bisection(const std::vector<NodeId>& a,
                     const std::vector<NodeId>& b);
  /// Cut every link to and from `n` (full isolation).
  void isolate(NodeId n);
  /// Restore src -> dst (and dst -> src unless `oneway`).
  void heal_link(NodeId src, NodeId dst, bool oneway = false);
  /// Restore every link to and from `n`.
  void heal_node(NodeId n);
  /// Restore all links.
  void heal_all();
  /// True when src -> dst currently delivers (loopback always does).
  bool reachable(NodeId src, NodeId dst) const {
    return src == dst || !cuts_.contains(link_key(src, dst));
  }
  /// Number of directed links currently cut.
  std::size_t cut_link_count() const { return cuts_.size(); }

  /// Instantaneous allocated rates.
  Rate node_up_rate(NodeId n) const { return up_rate_[n]; }
  Rate node_down_rate(NodeId n) const { return down_rate_[n]; }

  /// Time-weighted average utilization (fraction of NIC capacity) since
  /// construction, split by direction.
  double avg_up_utilization(NodeId n, SimTime t_end) const {
    return up_util_[n].average(t_end);
  }
  double avg_down_utilization(NodeId n, SimTime t_end) const {
    return down_util_[n].average(t_end);
  }
  double peak_down_utilization(NodeId n) const {
    return down_util_[n].peak();
  }
  double peak_up_utilization(NodeId n) const { return up_util_[n].peak(); }

  /// Utilization integrals for window averages (see TimeWeighted).
  double up_utilization_integral(NodeId n, SimTime t) const {
    return up_util_[n].integral_until(t);
  }
  double down_utilization_integral(NodeId n, SimTime t) const {
    return down_util_[n].integral_until(t);
  }

  /// Total bytes moved since construction (all flows).
  double total_bytes_moved() const { return bytes_moved_; }

  std::size_t active_flows() const { return flows_.size(); }

  /// Distinct (src, dst, cap, group) aggregates among the active flows
  /// (exposed for tests / telemetry; the water-filling loop is linear in
  /// this, not in active_flows()).
  std::size_t active_bundles() const { return bundles_.size(); }

  /// Test/diagnostic view of the active flows in arrival order.
  struct FlowInfo {
    NodeId src, dst;
    Rate cap;
    const CapGroup* group;
    Rate rate;
    double remaining;
  };
  std::vector<FlowInfo> flow_snapshot() const;

 private:
  struct Bundle;

  struct Flow {
    NodeId src, dst;
    double remaining;
    double cap;
    CapGroup* group;
    Bundle* bundle = nullptr;
    double rate = 0.0;
    sim::Event done;
    Flow(sim::Simulator& s, NodeId a, NodeId b, double rem, double c,
         CapGroup* g)
        : src(a), dst(b), remaining(rem), cap(c), group(g), done(s) {}
  };

  /// Aggregate of `count` flows identical in (src, dst, cap, group). The
  /// filling loop freezes whole bundles: its freeze conditions depend only
  /// on these key fields, so member flows always saturate together.
  struct Bundle {
    NodeId src = 0, dst = 0;
    double cap = 0.0;
    CapGroup* group = nullptr;
    std::size_t count = 0;
    double rate = 0.0;    // per-flow rate after the last recompute
    bool frozen = false;  // scratch for the filling loop
  };

  struct BundleKey {
    NodeId src, dst;
    double cap;
    CapGroup* group;
    bool operator==(const BundleKey&) const = default;
  };
  struct BundleKeyHash {
    std::size_t operator()(const BundleKey& k) const;
  };

  Bundle& join_bundle(NodeId src, NodeId dst, double cap, CapGroup* group);
  void leave_bundle(Bundle& b);

  static constexpr std::uint64_t link_key(NodeId src, NodeId dst) {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }
  /// Apply a cut-set mutation under settle/recompute bracketing.
  void mutate_cuts(bool cut, NodeId src, NodeId dst, bool oneway);

  void settle();
  void recompute();

  /// Coalesce rate recomputation: many flows arriving at the same
  /// simulated instant (synchronized task waves, all-to-all phases) share
  /// one progressive-filling pass instead of paying O(flows x links)
  /// each. No simulated time passes in between, so results are identical.
  void schedule_recompute();

  sim::Simulator& sim_;
  std::vector<NicSpec> nics_;
  std::list<Flow> flows_;
  std::unordered_set<std::uint64_t> cuts_;  ///< directed links down
  // Bundles live in a node-based map (stable addresses for Flow::bundle).
  std::unordered_map<BundleKey, Bundle, BundleKeyHash> bundles_;
  std::vector<Rate> up_rate_, down_rate_;
  std::vector<TimeWeighted> up_util_, down_util_;
  SimTime last_update_ = 0.0;
  sim::EventId completion_event_ = 0;
  bool recompute_pending_ = false;
  double bytes_moved_ = 0.0;

  // Water-filling scratch, reused across recomputes. Residuals/counts are
  // dense per-port arrays, but only ports on the active lists are ever
  // initialized, charged, or reset; groups are stamped per pass.
  std::vector<double> wf_up_res_, wf_down_res_;
  std::vector<std::size_t> wf_up_cnt_, wf_down_cnt_;
  std::vector<NodeId> wf_up_active_, wf_down_active_;
  std::vector<Bundle*> wf_unfrozen_;
  std::vector<CapGroup*> wf_groups_;
  std::uint64_t wf_stamp_ = 0;

  // Observability handles (null when not attached; resolved once).
  obs::Observability* obs_ = nullptr;
  obs::Histogram* flow_lifetime_ = nullptr;  ///< seconds, bulk flows
  obs::Histogram* flow_fair_share_ = nullptr;  ///< achieved / best-case rate
  obs::Counter* msg_count_ = nullptr;
};

}  // namespace memfss::net
