// Seed-deterministic op streams, factored out of the loadgen so every
// harness that replays a workload -- the in-process closed loop
// (rt::run_loadgen), the socket client (rt::run_net_loadgen), and the
// sharded-store stress test -- generates the *identical* stream from
// the same (seed, thread) pair. The result-digest folding lives here
// too, so the in-process and over-the-wire replays of one stream can
// be compared digest-for-digest: with one client thread, one worker,
// and one connection, both paths must produce the same
// `result_digest`.
//
// Everything here is a pure function of its arguments: no clocks, no
// globals, no platform-dependent iteration order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "hash/hashes.hpp"
#include "kvstore/blob.hpp"
#include "rt/server.hpp"

namespace memfss::rt {

/// One element of a generated op stream.
struct GenOp {
  Op::Type type = Op::Type::get;
  std::uint32_t key_index = 0;
};

/// The knobs that shape a stream -- a strict subset of LoadgenOptions,
/// so the generator can be shared without dragging in server sizing.
struct StreamOptions {
  std::uint64_t seed = 1;
  std::size_t ops_per_thread = 20000;
  double get_fraction = 0.5;  ///< P(get); rest split put/del
  double del_fraction = 0.0;  ///< P(del)
  double zipf_theta = 0.0;    ///< key skew (0 = uniform)
  std::size_t key_space = 16384;
};

/// The deterministic op stream for one client thread: a pure function
/// of (opt.seed, opt mix parameters, thread_index).
std::vector<GenOp> generate_stream(const StreamOptions& opt,
                                   std::size_t thread_index);

/// Key string for a key index ("k<index>").
std::string loadgen_key(std::uint32_t key_index);

/// Deterministic put payload: a cheap byte pattern keyed by
/// (key, op index) so overwrites change content and a replayed stream
/// reproduces it byte-for-byte on either side of a socket.
kvstore::Blob stream_value(Bytes size, std::uint32_t key_index,
                           std::size_t op_index);

/// Fold one (op, result) pair into a running FNV-1a digest -- the
/// digest contract shared by the in-process and socket replay paths:
/// op type, key index, result code, and (for successful gets) the
/// value checksum, in submission order.
inline std::uint64_t fold_result(std::uint64_t digest, const GenOp& g,
                                 Errc code, std::uint64_t get_checksum) {
  digest = hash::fnv1a_byte(digest, static_cast<unsigned char>(g.type));
  digest = hash::fnv1a_decimal(digest, g.key_index);
  digest = hash::fnv1a_byte(digest, static_cast<unsigned char>(code));
  if (code == Errc::ok && g.type == Op::Type::get)
    digest = hash::fnv1a_decimal(digest, get_checksum);
  return digest;
}

/// Combine per-thread digests in thread order (the final fold both
/// replay paths report as `result_digest`).
inline std::uint64_t combine_digests(const std::vector<std::uint64_t>& per_thread) {
  std::uint64_t digest = hash::fnv1a_seed();
  for (const std::uint64_t d : per_thread)
    digest = hash::fnv1a_decimal(digest, d);
  return digest;
}

}  // namespace memfss::rt
