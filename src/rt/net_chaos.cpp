#include "rt/net_chaos.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "hash/hashes.hpp"
#include "kvstore/blob.hpp"
#include "netio/client.hpp"
#include "netio/resilient_client.hpp"
#include "rt/server.hpp"
#include "rt/sharded_store.hpp"
#include "rt/tcp_server.hpp"

namespace memfss::rt {
namespace {

double mono_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-thread key namespace: key spaces are disjoint by construction,
/// so each thread's view of its keys is sequential (file comment in
/// net_chaos.hpp).
std::string chaos_key(std::size_t thread, std::uint32_t key_index) {
  return "c" + std::to_string(thread) + ":" + loadgen_key(key_index);
}

/// What the store may hold for one key, as far as its owning thread can
/// prove. Acked ops collapse the state exactly; ops that died after
/// their bytes (possibly partially) hit the wire add possibilities that
/// stay until the next ack on the key.
struct KeyState {
  bool maybe_absent = true;              ///< "key absent" is possible
  std::set<std::uint64_t> maybe_values;  ///< checksums possibly resident
  std::set<std::uint64_t> ever;          ///< every checksum ever sent
};

struct ThreadTally {
  std::uint64_t calls = 0, acked = 0, acked_ok = 0, acked_not_found = 0,
                acked_other = 0, failed = 0, fatal = 0;
  std::uint64_t lost = 0, dup = 0, viol = 0;
  std::uint64_t digest = hash::fnv1a_seed();
  std::vector<KeyState> keys;
  obs::Histogram lat;
  netio::ResilientStats stats;
};

/// One client thread: replay its deterministic stream through the
/// proxy with a ResilientClient, folding every *acked* result into the
/// digest and every outcome into the per-key possibility model.
void run_client(const NetChaosOptions& opt, std::uint16_t proxy_port,
                std::size_t t, ThreadTally& ta) {
  const StreamOptions sopt{opt.seed,         opt.ops_per_thread,
                           opt.get_fraction, opt.del_fraction,
                           0.0,              opt.key_space};
  const std::vector<GenOp> stream = generate_stream(sopt, t);
  ta.keys.resize(opt.key_space);

  netio::ResilientOptions ropt;
  ropt.port = proxy_port;
  ropt.auth_token = opt.auth_token;
  ropt.seed = opt.seed * 7919 + t + 1;
  ropt.attempt_recv_timeout_s = opt.attempt_recv_timeout_s;
  ropt.default_deadline_s = opt.call_deadline_s;
  ropt.backoff_base_s = 0.002;
  ropt.backoff_max_s = 0.05;
  ropt.breaker_cooldown_s = 0.05;
  netio::ResilientClient rc(ropt);

  for (std::size_t i = 0; i < stream.size(); ++i) {
    const GenOp& g = stream[i];
    const std::uint64_t rid =
        (static_cast<std::uint64_t>(t + 1) << 40) | static_cast<std::uint64_t>(i);
    const std::string key = chaos_key(t, g.key_index);
    KeyState& ks = ta.keys[g.key_index];

    netio::Frame req;
    std::uint64_t put_sum = 0;
    if (g.type == Op::Type::put) {
      kvstore::Blob v = stream_value(opt.value_size, g.key_index, i);
      put_sum = v.checksum();
      req = netio::NetClient::make_put(
          rid, 0, key,
          std::vector<std::uint8_t>(v.bytes().begin(), v.bytes().end()));
    } else if (g.type == Op::Type::get) {
      req = netio::NetClient::make_get(rid, 0, key);
    } else {
      req = netio::NetClient::make_del(rid, 0, key);
    }

    const double t0 = mono_s();
    // Every op here is idempotent: PUT re-sends the identical
    // deterministic bytes under the same id, GET/DEL converge.
    const netio::CallOutcome out = rc.call(req, /*idempotent=*/true);
    ta.lat.add(mono_s() - t0);
    ++ta.calls;

    if (g.type == Op::Type::put && out.sends > 0) ks.ever.insert(put_sum);

    if (!out.answered) {
      ++ta.failed;
      if (out.code == Errc::fatal) ++ta.fatal;
      // The op may have been applied anyway; widen the possibilities.
      if (out.sends > 0) {
        if (g.type == Op::Type::put) ks.maybe_values.insert(put_sum);
        if (g.type == Op::Type::del) ks.maybe_absent = true;
      }
      continue;
    }

    const Errc code = static_cast<Errc>(out.code);
    ++ta.acked;
    if (code == Errc::ok)
      ++ta.acked_ok;
    else if (code == Errc::not_found)
      ++ta.acked_not_found;
    else
      ++ta.acked_other;
    ta.digest = fold_result(ta.digest, g, code, out.response.checksum);

    switch (g.type) {
      case Op::Type::put:
        if (code == Errc::ok) {
          ks.maybe_absent = false;
          ks.maybe_values.clear();
          ks.maybe_values.insert(put_sum);
        } else if (out.sends > 0) {
          // Answered but not applied (oom, ...); an earlier lost
          // attempt might still have landed.
          ks.maybe_values.insert(put_sum);
        }
        break;
      case Op::Type::del:
        if (code == Errc::ok) {
          if (ks.maybe_values.empty()) ++ta.viol;  // deleted a value nobody put
        } else if (code == Errc::not_found) {
          // DEL is idempotent in effect but not in answer: when the
          // request hit the wire more than once, an earlier attempt may
          // have deleted the key and lost its response, and the acked
          // retry then legitimately answers not_found for a key the
          // model knew present. Only a single-transmission not_found
          // proves the key was absent before the call.
          if (!ks.maybe_absent && out.sends <= 1) ++ta.viol;
        }
        if (code == Errc::ok || code == Errc::not_found) {
          ks.maybe_absent = true;
          ks.maybe_values.clear();
        } else if (out.sends > 0) {
          ks.maybe_absent = true;
        }
        break;
      case Op::Type::get:
        if (code == Errc::ok) {
          const std::uint64_t c = out.response.checksum;
          if (ks.maybe_values.count(c)) {
            ks.maybe_absent = false;
            ks.maybe_values.clear();
            ks.maybe_values.insert(c);
          } else if (ks.ever.count(c)) {
            ++ta.dup;  // a superseded attempt re-landed
          } else {
            ++ta.viol;  // bytes we never sent for this key
          }
        } else if (code == Errc::not_found) {
          if (!ks.maybe_absent)
            ++ta.lost;  // an acked value vanished
          else
            ks.maybe_values.clear();  // collapse: absent right now
        }
        break;
      default:
        break;
    }
  }
  ta.stats = rc.stats();
}

/// Sequential in-process replay of the same streams: the result digest
/// the wire path must reproduce when nothing faults. Valid because key
/// spaces are disjoint (thread order does not matter) and capacity is
/// ample (no cross-thread eviction coupling).
std::uint64_t oracle_replay(const NetChaosOptions& opt) {
  ShardedStore store({opt.shards, opt.capacity, opt.auth_token});
  RuntimeServer server(store,
                       {1, opt.queue_capacity, std::chrono::microseconds(0)});
  std::vector<std::uint64_t> per(opt.client_threads);
  const StreamOptions sopt{opt.seed,         opt.ops_per_thread,
                           opt.get_fraction, opt.del_fraction,
                           0.0,              opt.key_space};
  for (std::size_t t = 0; t < opt.client_threads; ++t) {
    std::uint64_t digest = hash::fnv1a_seed();
    const std::vector<GenOp> stream = generate_stream(sopt, t);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const GenOp& g = stream[i];
      Op op;
      op.type = g.type;
      op.key = chaos_key(t, g.key_index);
      if (g.type == Op::Type::put)
        op.value = stream_value(opt.value_size, g.key_index, i);
      const OpResult r = server.submit(opt.auth_token, std::move(op)).get();
      digest = fold_result(digest, g, r.code, r.value.checksum());
    }
    per[t] = digest;
  }
  return combine_digests(per);
}

}  // namespace

NetChaosResult run_net_chaos(const NetChaosOptions& opt) {
  NetChaosResult res;
  res.opt = opt;
  const double t_start = mono_s();

  ShardedStore store({opt.shards, opt.capacity, opt.auth_token});
  RuntimeServer server(store, {opt.server_threads, opt.queue_capacity,
                               std::chrono::microseconds(opt.service_time_us)});
  TcpServer::Options topt;
  topt.reactors = opt.reactors;
  topt.idle_timeout = opt.idle_timeout;
  TcpServer tcp(server, topt);

  netio::ChaosPlan plan = opt.plan;
  plan.seed = opt.seed;
  netio::ChaosProxy proxy(tcp.port(), plan);
  if (!proxy.ok()) {
    res.fail_reason = "chaos proxy failed to start";
    return res;
  }
  proxy.set_faults_enabled(opt.faults);

  // -- chaos phase: N clients through the proxy -------------------------
  std::vector<ThreadTally> tallies(opt.client_threads);
  {
    std::vector<std::thread> ts;
    ts.reserve(opt.client_threads);
    for (std::size_t t = 0; t < opt.client_threads; ++t)
      ts.emplace_back(
          [&, t] { run_client(opt, proxy.port(), t, tallies[t]); });
    for (auto& th : ts) th.join();
  }

  // -- quiesce: faults off, let delayed pieces drain --------------------
  proxy.set_faults_enabled(false);
  const double settle_s =
      0.05 + 3.0 * static_cast<double>(opt.plan.delay_max_us) / 1e6;
  std::this_thread::sleep_for(std::chrono::duration<double>(settle_s));

  obs::Histogram lat;
  std::vector<std::uint64_t> per_digest(opt.client_threads);
  for (std::size_t t = 0; t < opt.client_threads; ++t) {
    ThreadTally& ta = tallies[t];
    res.calls += ta.calls;
    res.acked += ta.acked;
    res.acked_ok += ta.acked_ok;
    res.acked_not_found += ta.acked_not_found;
    res.acked_other += ta.acked_other;
    res.failed_calls += ta.failed;
    res.fatal_calls += ta.fatal;
    res.lost_acks += ta.lost;
    res.duplicated_acks += ta.dup;
    res.consistency_violations += ta.viol;
    lat.merge(ta.lat);
    per_digest[t] = ta.digest;
    res.attempts += ta.stats.attempts;
    res.retries += ta.stats.retries;
    res.reconnects += ta.stats.reconnects;
    res.connect_failures += ta.stats.connect_failures;
    res.timeouts += ta.stats.timeouts;
    res.corrupt_frames += ta.stats.corrupt_frames;
    res.protocol_errors += ta.stats.protocol_errors;
    res.mismatched_ids += ta.stats.mismatched_ids;
    res.value_checksum_failures += ta.stats.value_checksum_failures;
    res.overloaded_waits += ta.stats.overloaded_waits;
    res.breaker_opens += ta.stats.breaker_opens;
    res.breaker_rejections += ta.stats.breaker_rejections;
  }
  res.call_latency = lat.summary();
  res.read_digest = combine_digests(per_digest);

  // -- final verification over a clean direct connection ----------------
  {
    netio::NetClient direct;
    Status st = direct.connect(tcp.port());
    if (st.ok()) st = direct.set_recv_timeout(2.0);
    if (st.ok()) {
      std::uint64_t vid = 1ull << 50;
      st = direct.send(netio::NetClient::make_auth(++vid, opt.auth_token));
      if (st.ok()) {
        auto af = direct.recv();
        if (!af.ok() || af.value().status != 0)
          st = Status(Errc::unavailable, "verification auth failed");
      }
      for (std::size_t t = 0; st.ok() && t < opt.client_threads; ++t) {
        for (std::uint32_t k = 0; st.ok() && k < opt.key_space; ++k) {
          const KeyState& ks = tallies[t].keys[k];
          st = direct.send(
              netio::NetClient::make_get(++vid, 0, chaos_key(t, k)));
          if (!st.ok()) break;
          auto rf = direct.recv();
          if (!rf.ok()) {
            st = Status(rf.error());
            break;
          }
          const netio::Frame& f = rf.value();
          const Errc code = static_cast<Errc>(f.status);
          if (code == Errc::ok) {
            if (ks.maybe_values.count(f.checksum)) {
              // Allowed by the model; also check the bytes themselves.
              const std::string_view bytes(
                  reinterpret_cast<const char*>(f.value.data()),
                  f.value.size());
              if (f.value.size() == f.value_size &&
                  hash::fnv1a(bytes) != f.checksum)
                ++res.consistency_violations;
            } else if (ks.ever.count(f.checksum)) {
              ++res.duplicated_acks;
            } else {
              ++res.consistency_violations;
            }
          } else if (code == Errc::not_found) {
            if (!ks.maybe_absent) ++res.lost_acks;
          } else {
            ++res.consistency_violations;
          }
        }
      }
    }
    if (!st.ok()) {
      res.fail_reason = "verification read failed: " + st.error().to_string();
      ++res.consistency_violations;
    }
  }

  // -- accounting invariants after quiesce ------------------------------
  {
    const Bytes used = store.used();
    Bytes sum_acc = 0, sum_rec = 0;
    for (std::size_t s = 0; s < opt.shards; ++s) {
      sum_acc += store.shard_used(s);
      sum_rec += store.shard_recomputed_used(s);
    }
    res.accounting_ok =
        used == sum_acc && used == sum_rec && used <= store.capacity();
    if (!res.accounting_ok) {
      res.accounting_msg = "used=" + std::to_string(used) +
                           " shard_sum=" + std::to_string(sum_acc) +
                           " recomputed=" + std::to_string(sum_rec) +
                           " capacity=" + std::to_string(store.capacity());
    }
  }

  proxy.shutdown();
  res.chaos = proxy.stats();
  tcp.shutdown();
  res.srv_resets = server.metrics().counter_value("rt.net.resets");
  res.srv_idle_reaps = server.metrics().counter_value("rt.net.idle_reaps");
  res.srv_protocol_errors =
      server.metrics().counter_value("rt.net.protocol_errors");

  res.oracle_digest = oracle_replay(opt);
  res.digest_ok = res.read_digest == res.oracle_digest;
  res.wall_s = mono_s() - t_start;

  // -- verdict ----------------------------------------------------------
  res.passed = true;
  auto fail = [&res](const std::string& why) {
    res.passed = false;
    if (res.fail_reason.empty()) res.fail_reason = why;
  };
  if (res.calls !=
      static_cast<std::uint64_t>(opt.client_threads) * opt.ops_per_thread)
    fail("not every op ran to a terminal outcome");
  if (res.acked == 0) fail("no op was ever acknowledged");
  if (res.lost_acks) fail("lost acknowledged ops");
  if (res.duplicated_acks) fail("superseded writes re-landed");
  if (res.consistency_violations)
    fail(res.fail_reason.empty() ? "reads outside the possibility model"
                                 : res.fail_reason);
  if (!res.accounting_ok) fail("accounting broken: " + res.accounting_msg);
  if (!opt.faults) {
    if (res.failed_calls) fail("clean arm had failed calls");
    if (!res.digest_ok) fail("clean arm digest != in-process oracle");
  }
  return res;
}

std::string net_chaos_csv_header() {
  return "seed,faults,calls,acked,acked_ok,acked_not_found,acked_other,"
         "failed_calls,fatal_calls,attempts,retries,reconnects,timeouts,"
         "corrupt_frames,overloaded_waits,breaker_opens,resets_injected,"
         "blackholed,chunks_corrupted,chunks_torn,chunks_delayed,"
         "srv_resets,srv_idle_reaps,lost_acks,duplicated_acks,"
         "consistency_violations,accounting_ok,digest_ok,p50_ms,p99_ms,"
         "wall_s,passed";
}

std::string net_chaos_csv_row(const NetChaosResult& r) {
  char tail[128];
  std::snprintf(tail, sizeof(tail), "%.3f,%.3f,%.3f,%d",
                r.call_latency.p50 * 1e3, r.call_latency.p99 * 1e3, r.wall_s,
                r.passed ? 1 : 0);
  std::string s;
  auto add = [&s](std::uint64_t v) { s += std::to_string(v) + ","; };
  add(r.opt.seed);
  add(r.opt.faults ? 1 : 0);
  add(r.calls);
  add(r.acked);
  add(r.acked_ok);
  add(r.acked_not_found);
  add(r.acked_other);
  add(r.failed_calls);
  add(r.fatal_calls);
  add(r.attempts);
  add(r.retries);
  add(r.reconnects);
  add(r.timeouts);
  add(r.corrupt_frames);
  add(r.overloaded_waits);
  add(r.breaker_opens);
  add(r.chaos.resets_injected);
  add(r.chaos.blackholed);
  add(r.chaos.chunks_corrupted);
  add(r.chaos.chunks_torn);
  add(r.chaos.chunks_delayed);
  add(r.srv_resets);
  add(r.srv_idle_reaps);
  add(r.lost_acks);
  add(r.duplicated_acks);
  add(r.consistency_violations);
  add(r.accounting_ok ? 1 : 0);
  add(r.digest_ok ? 1 : 0);
  return s + tail;
}

}  // namespace memfss::rt
