// ShardedStore: the concurrent deployment of kvstore::Store (DESIGN.md
// §11). Keys are partitioned over N single-threaded Store shards by the
// same FNV-1a digest the placement layer uses; each shard is guarded by
// its own mutex, and a global memory cap is enforced across shards with
// an atomic reserve-before-insert / release-after-remove protocol, so
// the aggregate `used()` never exceeds `capacity()` at any instant even
// while shards mutate concurrently.
//
// Lock order: at most one shard mutex is ever held at a time and the
// aggregate accounting is a lock-free atomic, so there is no lock
// ordering to get wrong and no deadlock surface. Whole-store scans
// (key_count(), stats()) lock shards one at a time and are therefore
// only instant-consistent per shard, which is all their callers need.
//
// Every mutating operation is assigned a per-shard serialization index
// (`seq`, incremented under the shard mutex). Since a key lives on
// exactly one shard, sorting one key's completed operations by seq
// recovers the real execution order -- the linearizability test replays
// that order against a sequential Store model.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "kvstore/blob.hpp"
#include "kvstore/store.hpp"

namespace memfss::rt {

class TenantRegistry;

class ShardedStore {
 public:
  struct Options {
    std::size_t shards = 8;          ///< number of Store partitions (>= 1)
    Bytes capacity = 64 * units::MiB;  ///< aggregate memory cap
    std::string auth_token;          ///< required by every op (empty = off)
    /// When set, every resident byte is also charged to the owning
    /// tenant (per-key owner tracked under the shard mutex): puts
    /// charge-before-insert against the tenant's memory quota, removals
    /// release-after-remove. Tenant charges happen before the aggregate
    /// reservation and releases after the aggregate release, so
    /// sum-over-tenants >= used() at every instant and equals it at
    /// quiescence. nullptr = no per-tenant accounting (tenant args are
    /// ignored).
    TenantRegistry* tenants = nullptr;
  };

  explicit ShardedStore(Options opt);
  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  Bytes capacity() const { return capacity_; }

  /// Aggregate bytes accounted across all shards (atomic; includes
  /// reservations of puts currently in flight).
  Bytes used() const { return used_.load(std::memory_order_relaxed); }
  Bytes available() const { return capacity_ - used(); }

  /// Which shard owns `key`: FNV-1a digest mod shard count -- the same
  /// digest family the placement layer uses (hash::key_digest).
  std::size_t shard_of(std::string_view key) const;

  /// Validate a token without touching any key (the AUTH verb).
  Status check_token(std::string_view token) const;

  // Key operations mirror kvstore::Store but enforce the aggregate cap.
  // `seq` (optional) receives the per-shard serialization index assigned
  // to this operation, including failed ones. `tenant` attributes the
  // key's resident bytes when a TenantRegistry is attached: a put that
  // would push the tenant past its memory quota fails with
  // out_of_memory before touching the aggregate gate. Removals (del,
  // evict, clear_shard) always release to the *recorded owner*, so they
  // carry no tenant argument.
  Status put(std::string_view token, std::string_view key,
             kvstore::Blob value, std::uint64_t* seq = nullptr,
             std::uint32_t tenant = 0);
  Result<kvstore::Blob> get(std::string_view token, std::string_view key,
                            std::uint64_t* seq = nullptr);
  Status del(std::string_view token, std::string_view key,
             std::uint64_t* seq = nullptr);
  Result<bool> exists(std::string_view token, std::string_view key) const;

  /// Remove one key regardless of auth/closed state and release its
  /// accounting (the eviction path).
  std::optional<kvstore::Blob> evict(std::string_view key);

  /// Stop serving one shard: later operations on its keys fail with
  /// `unavailable`. Data stays drainable via evict().
  void close_shard(std::size_t shard);
  bool shard_closed(std::size_t shard) const;

  /// Drop one shard's keys; returns the bytes released.
  Bytes clear_shard(std::size_t shard);

  // Introspection (locks the shard(s) in question).
  Bytes shard_used(std::size_t shard) const;
  /// Walks the shard's keys and re-sums payload + overhead -- the oracle
  /// the stress test compares shard_used() against after quiesce.
  Bytes shard_recomputed_used(std::size_t shard) const;
  std::size_t key_count() const;
  kvstore::StoreStats stats() const;  ///< summed over shards

 private:
  struct Shard {
    mutable std::mutex mu;
    kvstore::Store store;
    std::uint64_t seq = 0;  ///< serialization index, guarded by mu
    /// key -> owning tenant slot; maintained (and only consulted) when
    /// a TenantRegistry is attached. Guarded by mu.
    std::unordered_map<std::string, std::uint32_t> owner;

    Shard(Bytes capacity, std::string token)
        : store(capacity, std::move(token)) {}
  };

  Shard& shard(std::string_view key) { return *shards_[shard_of(key)]; }

  /// CAS-reserve `n` bytes against the aggregate cap; false if it would
  /// overflow. Reservations are taken *before* bytes land in a shard so
  /// `used() <= capacity()` holds at every instant.
  bool try_reserve(Bytes n);
  void release(Bytes n) { used_.fetch_sub(n, std::memory_order_relaxed); }

  Bytes capacity_;
  TenantRegistry* tenants_;  ///< optional per-tenant byte accounting
  std::atomic<Bytes> used_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace memfss::rt
