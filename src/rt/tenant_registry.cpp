#include "rt/tenant_registry.hpp"

#include <algorithm>

namespace memfss::rt {

TenantRegistry::TenantRegistry(std::size_t max_tenants) {
  slots_.resize(std::max<std::size_t>(max_tenants, 1));
  // Slot 0: the default tenant. Unlimited and top priority so code that
  // never heard of tenants behaves exactly as before QoS existed.
  (void)register_tenant(TenantConfig{});
}

Result<std::uint32_t> TenantRegistry::register_tenant(TenantConfig cfg) {
  if (cfg.priority > kTopPriority)
    return {Errc::invalid_argument, "priority out of range"};
  if (cfg.weight == 0) cfg.weight = 1;
  // A half-specified RS policy (k without m, or vice versa) is a config
  // mistake, not a storable mode; k + m must also fit GF(2^8)'s point
  // count.
  if ((cfg.rs.k > 0) != (cfg.rs.m > 0))
    return {Errc::invalid_argument, "rs policy needs both k and m"};
  if (cfg.rs.enabled() && cfg.rs.k + cfg.rs.m > 255)
    return {Errc::invalid_argument, "rs policy k+m exceeds 255"};
  std::lock_guard lk(register_mu_);
  const std::uint32_t id = count_.load(std::memory_order_relaxed);
  if (id >= slots_.size())
    return {Errc::invalid_argument, "tenant table full"};
  auto st = std::make_unique<State>();
  st->ops = TokenBucket(cfg.ops_per_s, cfg.ops_burst);
  st->bytes = TokenBucket(cfg.bytes_per_s, cfg.bytes_burst);
  if (cfg.rs.enabled())
    st->rs = std::make_unique<const erasure::ReedSolomon>(cfg.rs.k, cfg.rs.m);
  st->cfg = std::move(cfg);
  slots_[id] = std::move(st);
  total_weight_.fetch_add(slots_[id]->cfg.weight, std::memory_order_release);
  count_.store(id + 1, std::memory_order_release);
  return id;
}

TenantRegistry::Admission TenantRegistry::admit(std::uint32_t id,
                                                Bytes payload_bytes,
                                                double now_s) {
  State& st = state(id);
  std::lock_guard lk(st.mu);
  // Oversized payloads cost one full bucket rather than being
  // unadmittable; delay_until applies the same clamp.
  const double byte_cost =
      st.bytes.unlimited()
          ? 0.0
          : std::min(static_cast<double>(payload_bytes), st.bytes.burst());
  const double ops_delay = st.ops.delay_until(now_s, 1.0);
  const double bytes_delay =
      byte_cost > 0.0 ? st.bytes.delay_until(now_s, byte_cost) : 0.0;
  if (ops_delay > 0.0 || bytes_delay > 0.0)
    return {Errc::overloaded, std::max(ops_delay, bytes_delay)};
  st.ops.try_take(now_s, 1.0);
  if (byte_cost > 0.0) st.bytes.try_take(now_s, byte_cost);
  return {};
}

bool TenantRegistry::try_charge_memory(std::uint32_t id, Bytes n) {
  State& st = state(id);
  const Bytes quota = st.cfg.memory_quota;
  if (quota == 0) {
    st.resident.fetch_add(n, std::memory_order_relaxed);
    return true;
  }
  Bytes cur = st.resident.load(std::memory_order_relaxed);
  while (true) {
    if (cur + n > quota) return false;
    if (st.resident.compare_exchange_weak(cur, cur + n,
                                          std::memory_order_relaxed))
      return true;
  }
}

void TenantRegistry::release_memory(std::uint32_t id, Bytes n) {
  state(id).resident.fetch_sub(n, std::memory_order_relaxed);
}

Bytes TenantRegistry::total_resident() const {
  Bytes sum = 0;
  const std::uint32_t n = tenant_count();
  for (std::uint32_t i = 0; i < n; ++i)
    sum += slots_[i]->resident.load(std::memory_order_relaxed);
  return sum;
}

}  // namespace memfss::rt
