// TenantRegistry: identity, limits, and live accounting for every
// tenant sharing the rt runtime (DESIGN.md §12).
//
// A tenant is a dense integer id (slot) handed out at registration and
// carried on every Op. Slot 0 is the pre-registered *default* tenant --
// unlimited, top priority, weight 1 -- so single-tenant callers keep
// working unchanged. Per tenant the registry holds:
//
//   - static policy: priority (0 = best-effort, shed first; kTopPriority
//     = never pressure-shed), DWRR weight for the thread pool, ops/s and
//     payload-bytes/s token buckets, and a resident-memory quota;
//   - live accounting: an atomic resident-byte counter maintained
//     exactly by rt::ShardedStore (charge-before-insert /
//     release-after-remove, mirroring the aggregate cap protocol), so
//     sum-over-tenants >= aggregate used() at every instant and equals
//     it at quiescence.
//
// Registration is mutex-guarded and publication is release/acquire on
// the slot count; the slot table never reallocates (fixed capacity at
// construction), so readers index it lock-free. admit() serializes per
// tenant -- contention is confined to one tenant's own submitters,
// which is exactly the isolation boundary.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "erasure/reed_solomon.hpp"
#include "rt/token_bucket.hpp"

namespace memfss::rt {

/// Priorities run 0 (best-effort, first to shed) through kTopPriority
/// (never shed by pressure -- only by its own rate limits).
inline constexpr std::uint32_t kTopPriority = 7;

/// Per-tenant Reed-Solomon redundancy policy (DESIGN.md §14): puts by a
/// tenant with an enabled policy are split into k data + m parity
/// sibling keys in the sharded store and decoded (reconstructing
/// missing shards) on get. Disabled (the default) = plain storage.
struct RsPolicy {
  std::size_t k = 0;  ///< data shards (>= 1 to enable)
  std::size_t m = 0;  ///< parity shards (>= 1 to enable; k + m <= 255)
  bool enabled() const { return k >= 1 && m >= 1; }
};

struct TenantConfig {
  std::string name = "default";
  std::uint32_t priority = kTopPriority;
  std::uint32_t weight = 1;    ///< deficit-round-robin share (>= 1)
  double ops_per_s = 0.0;      ///< admission rate; <= 0 = unlimited
  double ops_burst = 0.0;      ///< bucket depth; <= 0 = max(rate, 1)
  double bytes_per_s = 0.0;    ///< payload-byte rate; <= 0 = unlimited
  double bytes_burst = 0.0;
  Bytes memory_quota = 0;      ///< resident-byte cap; 0 = unlimited
  RsPolicy rs;                 ///< erasure-coded puts; default = off
};

class TenantRegistry {
 public:
  struct Admission {
    Errc code = Errc::ok;        ///< ok or overloaded
    double retry_after_s = 0.0;  ///< when overloaded: earliest useful retry
  };

  explicit TenantRegistry(std::size_t max_tenants = 64);
  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Add a tenant; returns its slot id. Fails with invalid_argument
  /// when the table is full or the priority is out of range.
  Result<std::uint32_t> register_tenant(TenantConfig cfg);

  std::uint32_t tenant_count() const {
    return count_.load(std::memory_order_acquire);
  }
  bool valid(std::uint32_t id) const { return id < tenant_count(); }

  const std::string& name(std::uint32_t id) const { return state(id).cfg.name; }
  std::uint32_t priority(std::uint32_t id) const {
    return state(id).cfg.priority;
  }
  std::uint32_t weight(std::uint32_t id) const { return state(id).cfg.weight; }
  Bytes memory_quota(std::uint32_t id) const {
    return state(id).cfg.memory_quota;
  }
  /// The tenant's Reed-Solomon coder, built once at registration from
  /// cfg.rs; nullptr when the tenant stores plainly. The coder is
  /// immutable and the slot never reallocates, so workers read it
  /// lock-free.
  const erasure::ReedSolomon* rs_coder(std::uint32_t id) const {
    return state(id).rs.get();
  }
  /// Sum of registered weights (for sizing per-tenant queue shares).
  std::uint64_t total_weight() const {
    return total_weight_.load(std::memory_order_acquire);
  }

  /// Rate admission for one op moving `payload_bytes` of value payload
  /// at time `now_s`: both the ops/s and bytes/s buckets must cover it
  /// or the op is shed with Errc::overloaded and a retry-after hint
  /// (the later of the two buckets' refill horizons). Payloads larger
  /// than the byte bucket's burst cost one full bucket, so oversized
  /// ops drain the bucket instead of being unadmittable forever.
  Admission admit(std::uint32_t id, Bytes payload_bytes, double now_s);

  // -- exact resident-memory accounting (called by ShardedStore) ------
  /// Reserve `n` resident bytes against the tenant's quota (CAS; plain
  /// add when unlimited). False = quota would be exceeded.
  bool try_charge_memory(std::uint32_t id, Bytes n);
  void release_memory(std::uint32_t id, Bytes n);
  Bytes memory_used(std::uint32_t id) const {
    return state(id).resident.load(std::memory_order_relaxed);
  }
  /// Sum of every tenant's resident bytes (the accounting invariant's
  /// left-hand side; >= ShardedStore::used() at every instant).
  Bytes total_resident() const;

 private:
  struct State {
    TenantConfig cfg;
    std::mutex mu;  ///< guards the two buckets
    TokenBucket ops;
    TokenBucket bytes;
    std::atomic<Bytes> resident{0};
    std::unique_ptr<const erasure::ReedSolomon> rs;  ///< set iff cfg.rs on
  };

  const State& state(std::uint32_t id) const { return *slots_[id]; }
  State& state(std::uint32_t id) { return *slots_[id]; }

  std::mutex register_mu_;
  std::atomic<std::uint32_t> count_{0};
  std::atomic<std::uint64_t> total_weight_{0};
  std::vector<std::unique_ptr<State>> slots_;  ///< fixed size, no realloc
};

}  // namespace memfss::rt
