#include "rt/tcp_server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "netio/frame.hpp"

namespace memfss::rt {

namespace {

using Clock = std::chrono::steady_clock;

// epoll user-data ids; connections start above the reserved ones.
constexpr std::uint64_t kListenId = 1;
constexpr std::uint64_t kWakeId = 2;
constexpr std::uint64_t kFirstConnId = 8;

int make_listen_socket(std::uint16_t port, std::uint16_t* bound_port,
                       std::string* err) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *err = std::string("socket: ") + strerror(errno);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  // One listening socket per reactor on the same port: the kernel
  // shards accepts across them (no shared accept lock).
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 256) != 0) {
    *err = std::string("bind/listen: ") + strerror(errno);
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  *bound_port = ntohs(addr.sin_port);
  return fd;
}

std::uint32_t retry_after_us(double retry_after_s) {
  if (retry_after_s <= 0.0) return 0;
  // Round up: a positive hint must never truncate to "retry now".
  const double us = std::ceil(retry_after_s * 1e6);
  return us >= 4e9 ? 4000000000u : static_cast<std::uint32_t>(us);
}

/// Worker threads hand encoded responses back to the owning reactor
/// through this queue. Completion callbacks hold it by shared_ptr, so
/// a callback firing after the reactor exited posts into a closed
/// queue (dropped) instead of touching freed memory or a recycled fd.
struct CompletionQueue {
  std::mutex mu;
  bool open = true;
  int wake_fd;  ///< eventfd, owned; closed by the destructor
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> items;

  CompletionQueue() {
    wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake_fd < 0) throw std::runtime_error("eventfd failed");
  }
  ~CompletionQueue() { ::close(wake_fd); }

  void post(std::uint64_t conn_id, std::vector<std::uint8_t> bytes) {
    std::lock_guard lk(mu);
    if (!open) return;
    const bool was_empty = items.empty();
    items.emplace_back(conn_id, std::move(bytes));
    if (was_empty) wake_locked();
  }

  void wake() {
    std::lock_guard lk(mu);
    if (open) wake_locked();
  }

  void close_posting() {
    std::lock_guard lk(mu);
    open = false;
  }

 private:
  void wake_locked() {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(wake_fd, &one, sizeof(one));  // EAGAIN = already signaled
  }
};

struct Conn {
  int fd = -1;
  std::uint64_t id = 0;
  netio::FrameDecoder decoder;
  std::vector<std::uint8_t> wbuf;
  std::size_t woff = 0;      ///< flushed prefix of wbuf
  std::size_t pending = 0;   ///< ops submitted, response not yet queued
  std::string token;         ///< set by AUTH, used by every later op
  bool want_write = false;   ///< EPOLLOUT currently armed
  bool read_open = true;     ///< still accepting request frames
  bool closing = false;      ///< close once pending == 0 and flushed
  Clock::time_point last_activity{};  ///< drives idle reaping

  std::size_t unsent() const { return wbuf.size() - woff; }

  explicit Conn(std::size_t max_body) : decoder(max_body) {}
};

}  // namespace

struct TcpServer::Reactor {
  TcpServer* owner;
  std::size_t index = 0;
  int epfd = -1;
  int listen_fd = -1;
  std::shared_ptr<CompletionQueue> completions;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  std::uint64_t next_conn_id = kFirstConnId;
  std::atomic<bool> stopping{false};
  bool deadline_armed = false;
  Clock::time_point drain_deadline;
  Clock::time_point next_reap_scan{};  ///< idle-reap scan throttle
  std::thread th;

  ~Reactor() {
    if (listen_fd >= 0) ::close(listen_fd);
    if (epfd >= 0) ::close(epfd);
  }

  MetricsSink& metrics() { return owner->server_.metrics(); }
  const Options& opt() const { return owner->opt_; }

  void update_interest(Conn& c) {
    epoll_event ev{};
    ev.events = (c.read_open ? EPOLLIN : 0u) | (c.want_write ? EPOLLOUT : 0u);
    ev.data.u64 = c.id;
    ::epoll_ctl(epfd, EPOLL_CTL_MOD, c.fd, &ev);
  }

  void close_conn(Conn& c) {
    ::epoll_ctl(epfd, EPOLL_CTL_DEL, c.fd, nullptr);
    ::close(c.fd);
    metrics().count("rt.net.closed");
    metrics().gauge_set(
        "rt.net.connections",
        static_cast<double>(
            owner->conn_count_.fetch_sub(1, std::memory_order_relaxed) - 1));
    conns.erase(c.id);  // destroys c; caller must not touch it again
  }

  /// Flush as much of the write buffer as the socket takes. Returns
  /// false when the connection died (caller must stop touching it).
  bool try_flush(Conn& c) {
    while (c.woff < c.wbuf.size()) {
      const ssize_t w = ::send(c.fd, c.wbuf.data() + c.woff,
                               c.wbuf.size() - c.woff, MSG_NOSIGNAL);
      if (w > 0) {
        c.woff += static_cast<std::size_t>(w);
        c.last_activity = Clock::now();
        metrics().count("rt.net.bytes_out", static_cast<std::uint64_t>(w));
        continue;
      }
      if (w < 0 && errno == EINTR) continue;
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!c.want_write) {
          c.want_write = true;
          update_interest(c);
        }
        return true;
      }
      metrics().count("rt.net.resets");  // peer reset mid-write
      close_conn(c);
      return false;
    }
    c.wbuf.clear();
    c.woff = 0;
    if (c.want_write) {
      c.want_write = false;
      update_interest(c);
    }
    return true;
  }

  /// Close if the connection is fully drained and marked for closing.
  /// Returns false when it closed.
  bool maybe_close(Conn& c) {
    if (c.closing && c.pending == 0 && c.unsent() == 0) {
      close_conn(c);
      return false;
    }
    return true;
  }

  /// Queue the one-and-only protocol-error frame and start closing.
  void protocol_error(Conn& c) {
    metrics().count("rt.net.protocol_errors");
    netio::Frame err;
    err.kind = netio::Frame::Kind::response;
    err.status = static_cast<std::uint8_t>(Errc::invalid_argument);
    err.flags = netio::kFlagProtocolError;
    netio::encode_frame(err, c.wbuf);
    metrics().count("rt.net.frames_out");
    c.read_open = false;
    c.closing = true;
    update_interest(c);
  }

  void submit_frame(Conn& c, netio::Frame& f) {
    Op op;
    switch (static_cast<netio::Opcode>(f.opcode)) {
      case netio::Opcode::put:
        op.type = Op::Type::put;
        op.value = kvstore::Blob::materialized(std::move(f.value));
        break;
      case netio::Opcode::get: op.type = Op::Type::get; break;
      case netio::Opcode::del: op.type = Op::Type::del; break;
      case netio::Opcode::exists: op.type = Op::Type::exists; break;
      case netio::Opcode::auth:
        op.type = Op::Type::auth;
        // The token travels in the key field and sticks to the
        // connection -- set it first so the AUTH op itself validates it.
        c.token.assign(f.key);
        break;
    }
    op.key = std::move(f.key);
    op.tenant = f.tenant;
    ++c.pending;
    const bool is_get = op.type == Op::Type::get;
    const bool is_exists = op.type == Op::Type::exists;
    owner->server_.submit_async(
        c.token, std::move(op),
        [q = completions, cid = c.id, rid = f.request_id, is_get,
         is_exists](OpResult r) {
          netio::Frame resp;
          resp.kind = netio::Frame::Kind::response;
          resp.status = static_cast<std::uint8_t>(r.code);
          resp.request_id = rid;
          resp.retry_after_us = retry_after_us(r.retry_after_s);
          if (r.seq.has_value()) {
            resp.flags |= netio::kFlagHasSeq;
            resp.seq = *r.seq;
          }
          if (is_exists && r.found) resp.flags |= netio::kFlagFound;
          if (is_get && r.code == Errc::ok) {
            resp.checksum = r.value.checksum();
            resp.value_size = static_cast<std::uint32_t>(r.value.size());
            const auto bytes = r.value.bytes();
            resp.value.assign(bytes.begin(), bytes.end());
          }
          q->post(cid, netio::encode(resp));
        });
  }

  /// Decode and dispatch every complete frame buffered on `c`.
  /// Returns false when the connection died.
  bool process_frames(Conn& c) {
    netio::Frame f;
    while (c.read_open) {
      const auto t0 = Clock::now();
      const netio::Decode d = c.decoder.next(f);
      if (d == netio::Decode::need_more) return true;
      if (d == netio::Decode::error) {
        protocol_error(c);
        if (!try_flush(c)) return false;
        return maybe_close(c);
      }
      metrics().observe(
          "rt.net.frame_decode_s",
          std::chrono::duration<double>(Clock::now() - t0).count());
      metrics().count("rt.net.frames_in");
      if (f.kind != netio::Frame::Kind::request) {
        // A client pushing response frames is as malformed as bad magic.
        protocol_error(c);
        if (!try_flush(c)) return false;
        return maybe_close(c);
      }
      submit_frame(c, f);
    }
    return true;
  }

  /// Returns false when the connection died.
  bool handle_read(Conn& c) {
    while (c.read_open) {
      std::uint8_t buf[64 * 1024];
      const ssize_t r = ::recv(c.fd, buf, sizeof(buf), 0);
      if (r > 0) {
        c.last_activity = Clock::now();
        metrics().count("rt.net.bytes_in", static_cast<std::uint64_t>(r));
        c.decoder.feed(buf, static_cast<std::size_t>(r));
        if (!process_frames(c)) return false;
        if (static_cast<std::size_t>(r) < sizeof(buf)) break;
        continue;
      }
      if (r == 0) {  // orderly EOF: answer what's in flight, then close
        c.read_open = false;
        c.closing = true;
        update_interest(c);
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      metrics().count("rt.net.resets");  // hard read error (ECONNRESET)
      close_conn(c);
      return false;
    }
    if (!try_flush(c)) return false;
    return maybe_close(c);
  }

  void handle_accept() {
    for (;;) {
      const int fd =
          ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN or transient accept error: try again on epoll
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      if (opt().so_sndbuf > 0)
        ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &opt().so_sndbuf,
                     sizeof(opt().so_sndbuf));
      auto conn = std::make_unique<Conn>(opt().max_frame_body);
      conn->fd = fd;
      conn->id = next_conn_id++;
      conn->last_activity = Clock::now();
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = conn->id;
      if (::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        ::close(fd);
        continue;
      }
      conns.emplace(conn->id, std::move(conn));
      metrics().count("rt.net.accepted");
      metrics().gauge_set(
          "rt.net.connections",
          static_cast<double>(
              owner->conn_count_.fetch_add(1, std::memory_order_relaxed) +
              1));
    }
  }

  void drain_completions() {
    std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> items;
    {
      std::lock_guard lk(completions->mu);
      items.swap(completions->items);
      std::uint64_t n = 0;
      [[maybe_unused]] const ssize_t r =
          ::read(completions->wake_fd, &n, sizeof(n));
    }
    for (auto& [conn_id, bytes] : items) {
      const auto it = conns.find(conn_id);
      if (it == conns.end()) continue;  // connection already gone
      Conn& c = *it->second;
      if (c.pending > 0) --c.pending;
      c.last_activity = Clock::now();
      c.wbuf.insert(c.wbuf.end(), bytes.begin(), bytes.end());
      metrics().count("rt.net.frames_out");
      if (!try_flush(c)) continue;
      // A client that pipelines requests but never drains responses
      // gets cut off -- its buffered responses must not pin memory.
      if (c.unsent() > opt().max_write_buffer) {
        metrics().count("rt.net.slow_client_disconnects");
        close_conn(c);
        continue;
      }
      maybe_close(c);
    }
  }

  /// Close connections that have been silent past the idle timeout. A
  /// connection with in-flight ops or unflushed responses is busy, not
  /// idle, no matter how long ago the client last wrote -- reaping it
  /// would drop acknowledged work.
  void reap_idle() {
    const auto timeout = opt().idle_timeout;
    if (timeout.count() <= 0) return;
    const auto now = Clock::now();
    if (now < next_reap_scan) return;
    next_reap_scan =
        now + std::max(timeout / 4, std::chrono::milliseconds(10));
    std::vector<std::uint64_t> idle;
    for (const auto& [id, c] : conns)
      if (c->pending == 0 && c->unsent() == 0 &&
          now - c->last_activity >= timeout)
        idle.push_back(id);
    for (const std::uint64_t id : idle) {
      const auto it = conns.find(id);
      if (it == conns.end()) continue;
      metrics().count("rt.net.idle_reaps");
      close_conn(*it->second);
    }
  }

  void run() {
    for (;;) {
      epoll_event evs[64];
      const int n = ::epoll_wait(epfd, evs, 64, 50);
      for (int i = 0; i < n; ++i) {
        const std::uint64_t id = evs[i].data.u64;
        if (id == kListenId) {
          handle_accept();
          continue;
        }
        if (id == kWakeId) continue;  // drained below
        const auto it = conns.find(id);
        if (it == conns.end()) continue;  // closed earlier this batch
        Conn& c = *it->second;
        if (evs[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
          // Read first even on ERR/HUP: an RST surfaces as a recv()
          // error (counted in rt.net.resets) and buffered frames that
          // raced the close still deserve answers.
          if (!handle_read(c)) continue;
        }
        if (evs[i].events & (EPOLLERR | EPOLLHUP)) {
          // Flush what we can (the peer may have only half-closed);
          // a dead socket errors out of try_flush and closes.
          if (!try_flush(c)) continue;
          c.read_open = false;
          c.closing = true;
          if (!maybe_close(c)) continue;
          update_interest(c);
          continue;
        }
        if (evs[i].events & EPOLLOUT) {
          if (!try_flush(c)) continue;
          maybe_close(c);
        }
      }
      drain_completions();
      reap_idle();

      if (stopping.load(std::memory_order_acquire)) {
        if (listen_fd >= 0) {  // stop accepting; drain what's connected
          ::epoll_ctl(epfd, EPOLL_CTL_DEL, listen_fd, nullptr);
          ::close(listen_fd);
          listen_fd = -1;
        }
        if (!deadline_armed) {
          deadline_armed = true;
          drain_deadline = Clock::now() + opt().drain_timeout;
        }
        // Sweep every readable connection before judging it idle:
        // frames the client wrote before shutdown may still be sitting
        // unread in the kernel buffer, and "drain" promises responses
        // for everything already on the wire.
        std::vector<std::uint64_t> ids;
        ids.reserve(conns.size());
        for (const auto& [id, c] : conns) ids.push_back(id);
        for (const std::uint64_t id : ids) {
          const auto it = conns.find(id);
          if (it != conns.end() && it->second->read_open)
            handle_read(*it->second);
        }
        const bool expired = Clock::now() >= drain_deadline;
        std::vector<std::uint64_t> closeable;
        for (auto& [id, c] : conns)
          if (expired || (c->pending == 0 && c->unsent() == 0))
            closeable.push_back(id);
        for (const std::uint64_t id : closeable) {
          const auto it = conns.find(id);
          if (it != conns.end()) close_conn(*it->second);
        }
        if (conns.empty()) break;
      }
    }
    // No further completions can be delivered; posts after this are
    // dropped by the queue instead of waking a dead loop.
    completions->close_posting();
  }
};

TcpServer::TcpServer(RuntimeServer& server, Options opt)
    : server_(server), opt_(opt) {
  if (opt_.reactors == 0) opt_.reactors = 1;
  port_ = opt_.port;
  std::string err;
  for (std::size_t i = 0; i < opt_.reactors; ++i) {
    auto r = std::make_unique<Reactor>();
    r->owner = this;
    r->index = i;
    r->listen_fd = make_listen_socket(port_, &port_, &err);
    if (r->listen_fd < 0) throw std::runtime_error("TcpServer: " + err);
    r->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    if (r->epfd < 0) throw std::runtime_error("TcpServer: epoll_create1");
    r->completions = std::make_shared<CompletionQueue>();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenId;
    ::epoll_ctl(r->epfd, EPOLL_CTL_ADD, r->listen_fd, &ev);
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeId;
    ::epoll_ctl(r->epfd, EPOLL_CTL_ADD, r->completions->wake_fd, &ev);
    reactors_.push_back(std::move(r));
  }
  for (auto& r : reactors_) r->th = std::thread([rp = r.get()] { rp->run(); });
}

TcpServer::~TcpServer() { shutdown(); }

void TcpServer::shutdown() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;
  for (auto& r : reactors_) {
    r->stopping.store(true, std::memory_order_release);
    r->completions->wake();
  }
  for (auto& r : reactors_)
    if (r->th.joinable()) r->th.join();
}

}  // namespace memfss::rt
