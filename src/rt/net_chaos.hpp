// Network chaos soak for the real serving path (DESIGN.md §15): the
// rt-runtime analogue of the sim-side `--chaos` harness. Seed-
// deterministic op streams are driven through a netio::ChaosProxy in
// front of a live rt::TcpServer by netio::ResilientClient workers, with
// resets, blackholes, torn frames, corruption, and delays firing mid-
// stream; afterwards the harness turns the faults off, quiesces, and
// checks what must have survived:
//
//   - zero lost acknowledged ops: every op the client saw acked has its
//     effect in the store (per-key exact-state check over a clean
//     connection);
//   - zero duplicated acknowledged ops: no key holds a value the model
//     says was superseded (a stale retry that re-landed late);
//   - digest-consistent reads: every acked GET returned a value
//     checksum the per-key possibility model allows -- corrupted bytes
//     must die as Errc::fatal, never read as data;
//   - accounting invariants after quiesce: used() == sum of shard
//     accounting == sum of recomputed shard usage, and used() <=
//     capacity();
//   - the no-fault arm (faults=false, still through the proxy) must
//     reproduce the in-process replay digest bit-for-bit -- the proxy
//     and resilient client are *transparent* when nothing misbehaves.
//
// Soundness of the model: each client thread owns a disjoint key space
// ("c<t>:k<i>"), so its view of a key is sequential; same-key ops
// serialize through the shard-pinned worker FIFO, so an abandoned
// attempt can never re-apply after a later acked op on the same key.
// An op that failed after its bytes (possibly partially) hit the wire
// adds an *unresolved possibility* (value present / key absent) that
// stays until the next acked op on that key collapses the state.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "netio/chaos.hpp"
#include "obs/histogram.hpp"
#include "rt/opstream.hpp"

namespace memfss::rt {

struct NetChaosOptions {
  std::uint64_t seed = 1;
  bool faults = true;  ///< false = clean arm (proxy still in the path)
  netio::ChaosPlan plan = netio::ChaosPlan::faulty(1);

  std::size_t client_threads = 3;
  std::size_t ops_per_thread = 900;
  std::size_t key_space = 96;  ///< per thread; key spaces are disjoint
  Bytes value_size = 256;
  double get_fraction = 0.5;
  double del_fraction = 0.1;

  std::size_t server_threads = 2;
  std::size_t shards = 8;
  std::size_t reactors = 2;
  Bytes capacity = 64 * units::MiB;
  std::size_t queue_capacity = 1024;
  std::uint32_t service_time_us = 0;
  std::string auth_token = "rt";
  std::chrono::milliseconds idle_timeout{1000};

  double call_deadline_s = 8.0;
  double attempt_recv_timeout_s = 0.15;
};

struct NetChaosResult {
  NetChaosOptions opt;

  // Call outcomes (client side).
  std::uint64_t calls = 0;
  std::uint64_t acked = 0;         ///< server answered (any status)
  std::uint64_t acked_ok = 0;
  std::uint64_t acked_not_found = 0;
  std::uint64_t acked_other = 0;   ///< oom and friends -- no state change
  std::uint64_t failed_calls = 0;  ///< deadline spent without an answer
  std::uint64_t fatal_calls = 0;   ///< of those, integrity (Errc::fatal)

  // Summed ResilientClient stats.
  std::uint64_t attempts = 0, retries = 0, reconnects = 0,
                connect_failures = 0, timeouts = 0, corrupt_frames = 0,
                protocol_errors = 0, mismatched_ids = 0,
                value_checksum_failures = 0, overloaded_waits = 0,
                breaker_opens = 0, breaker_rejections = 0;

  netio::ChaosStats chaos;  ///< proxy-side fault counters

  // Server-side rt.net.* counters.
  std::uint64_t srv_resets = 0, srv_idle_reaps = 0, srv_protocol_errors = 0;

  // Verification.
  std::uint64_t lost_acks = 0;        ///< exact acked state not found
  std::uint64_t duplicated_acks = 0;  ///< superseded value re-landed
  std::uint64_t consistency_violations = 0;  ///< read outside the model
  bool accounting_ok = false;
  std::string accounting_msg;
  std::uint64_t read_digest = 0;    ///< fold over acked calls
  std::uint64_t oracle_digest = 0;  ///< in-process replay (clean arm)
  bool digest_ok = false;           ///< clean arm: read == oracle

  double wall_s = 0.0;
  obs::HistogramSummary call_latency;  ///< per resilient call, seconds

  bool passed = false;
  std::string fail_reason;
};

NetChaosResult run_net_chaos(const NetChaosOptions& opt);

std::string net_chaos_csv_header();
std::string net_chaos_csv_row(const NetChaosResult& r);

}  // namespace memfss::rt
