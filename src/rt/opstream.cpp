#include "rt/opstream.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace memfss::rt {

namespace {

/// Cumulative Zipf(theta) distribution over `n` ranks, normalized to 1.
std::vector<double> zipf_cdf(std::size_t n, double theta) {
  std::vector<double> cdf(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf[i] = total;
  }
  for (auto& c : cdf) c /= total;
  return cdf;
}

std::uint32_t sample_key(Rng& rng, const std::vector<double>& cdf,
                         std::size_t key_space) {
  if (cdf.empty())
    return static_cast<std::uint32_t>(rng.uniform_u64(0, key_space - 1));
  const double u = rng.next_double();
  const auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
  return static_cast<std::uint32_t>(
      std::min<std::size_t>(static_cast<std::size_t>(it - cdf.begin()),
                            key_space - 1));
}

}  // namespace

std::string loadgen_key(std::uint32_t key_index) {
  return "k" + std::to_string(key_index);
}

std::vector<GenOp> generate_stream(const StreamOptions& opt,
                                   std::size_t thread_index) {
  // Per-thread stream seeded by mixing the run seed with the thread
  // index -- independent across threads, reproducible across runs.
  std::uint64_t s = opt.seed ^ (0x9e3779b97f4a7c15ull *
                                (static_cast<std::uint64_t>(thread_index) + 1));
  Rng rng(splitmix64(s));
  const auto cdf = opt.zipf_theta > 0.0
                       ? zipf_cdf(opt.key_space, opt.zipf_theta)
                       : std::vector<double>{};
  std::vector<GenOp> ops;
  ops.reserve(opt.ops_per_thread);
  for (std::size_t i = 0; i < opt.ops_per_thread; ++i) {
    GenOp op;
    const double u = rng.next_double();
    if (u < opt.get_fraction)
      op.type = Op::Type::get;
    else if (u < opt.get_fraction + opt.del_fraction)
      op.type = Op::Type::del;
    else
      op.type = Op::Type::put;
    op.key_index = sample_key(rng, cdf, opt.key_space);
    ops.push_back(op);
  }
  return ops;
}

kvstore::Blob stream_value(Bytes size, std::uint32_t key_index,
                           std::size_t op_index) {
  std::vector<std::uint8_t> bytes(size);
  std::uint64_t x = (static_cast<std::uint64_t>(key_index) << 32) ^
                    static_cast<std::uint64_t>(op_index);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(x = splitmix64(x));
  return kvstore::Blob::materialized(std::move(bytes));
}

}  // namespace memfss::rt
