// Closed-loop load generator for the concurrent runtime (memtier
// style): N client threads each replay a seed-deterministic op stream
// against a RuntimeServer, in batches, waiting for every batch before
// issuing the next. Key popularity is uniform or Zipf-skewed, the
// get:put:del mix and value size are configurable, and results come
// back as one CSV row compatible with the other benches.
//
// Op streams are generated up front by a pure function of
// (options, thread index) -- generate_ops() -- so a fixed seed replays
// the identical stream every run; with one client thread and one worker
// thread the *execution* order is the generation order too, which is
// what the deterministic-replay smoke test pins down via result_digest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/histogram.hpp"
#include "rt/server.hpp"

namespace memfss::rt {

struct LoadgenOptions {
  std::size_t client_threads = 1;   ///< closed-loop submitters
  std::size_t server_threads = 1;   ///< RuntimeServer workers
  std::size_t shards = 16;
  std::size_t ops_per_thread = 20000;
  std::size_t batch = 16;           ///< ops in flight per client
  Bytes value_size = 1024;          ///< materialized payload bytes
  double get_fraction = 0.5;        ///< P(get); rest split put/del
  double del_fraction = 0.0;        ///< P(del)
  double zipf_theta = 0.0;          ///< key skew (0 = uniform)
  std::size_t key_space = 16384;    ///< distinct keys, shared by threads
  Bytes capacity = 256 * units::MiB;
  std::size_t queue_capacity = 4096;
  std::uint64_t seed = 1;
  std::uint32_t service_time_us = 0;  ///< simulated remote-access latency
  std::string auth_token = "rt";
};

/// One element of a generated op stream.
struct GenOp {
  Op::Type type = Op::Type::get;
  std::uint32_t key_index = 0;
};

/// The deterministic op stream for one client thread: a pure function
/// of (opt.seed, opt mix parameters, thread_index).
std::vector<GenOp> generate_ops(const LoadgenOptions& opt,
                                std::size_t thread_index);

/// Key string for a key index ("k<index>").
std::string loadgen_key(std::uint32_t key_index);

struct LoadgenResult {
  LoadgenOptions opt;
  std::uint64_t puts = 0;      ///< ok puts
  std::uint64_t gets = 0;      ///< ok gets (hits)
  std::uint64_t dels = 0;      ///< ok dels
  std::uint64_t not_found = 0; ///< clean misses (get/del on absent key)
  std::uint64_t rejected = 0;  ///< backpressure rejections
  std::uint64_t errors = 0;    ///< anything else (oom, auth, ...)
  double wall_s = 0.0;
  double ops_per_sec = 0.0;    ///< completed (non-rejected) ops / wall
  obs::HistogramSummary latency;  ///< per-op submit-to-completion
  /// FNV-1a over every (thread, op type, key index, result code, get
  /// checksum) in submission order, folded per thread then combined in
  /// thread order. Identical streams + identical execution order =>
  /// identical digest.
  std::uint64_t result_digest = 0;
};

LoadgenResult run_loadgen(const LoadgenOptions& opt);

std::string loadgen_csv_header();
std::string loadgen_csv_row(const LoadgenResult& r);

}  // namespace memfss::rt
