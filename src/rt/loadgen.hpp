// Closed-loop load generator for the concurrent runtime (memtier
// style): N client threads each replay a seed-deterministic op stream
// against a RuntimeServer, in batches, waiting for every batch before
// issuing the next. Key popularity is uniform or Zipf-skewed, the
// get:put:del mix and value size are configurable, and results come
// back as one CSV row compatible with the other benches.
//
// Op streams are generated up front by a pure function of
// (options, thread index) -- generate_ops() -- so a fixed seed replays
// the identical stream every run; with one client thread and one worker
// thread the *execution* order is the generation order too, which is
// what the deterministic-replay smoke test pins down via result_digest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/histogram.hpp"
#include "rt/opstream.hpp"
#include "rt/server.hpp"

namespace memfss::rt {

struct LoadgenOptions {
  std::size_t client_threads = 1;   ///< closed-loop submitters
  std::size_t server_threads = 1;   ///< RuntimeServer workers
  std::size_t shards = 16;
  std::size_t ops_per_thread = 20000;
  std::size_t batch = 16;           ///< ops in flight per client
  Bytes value_size = 1024;          ///< materialized payload bytes
  double get_fraction = 0.5;        ///< P(get); rest split put/del
  double del_fraction = 0.0;        ///< P(del)
  double zipf_theta = 0.0;          ///< key skew (0 = uniform)
  std::size_t key_space = 16384;    ///< distinct keys, shared by threads
  Bytes capacity = 256 * units::MiB;
  std::size_t queue_capacity = 4096;
  std::uint64_t seed = 1;
  std::uint32_t service_time_us = 0;  ///< simulated remote-access latency
  std::string auth_token = "rt";
};

/// The stream-shaping subset of `opt` (see rt/opstream.hpp -- the
/// generator itself is shared with the socket replay path).
StreamOptions stream_options(const LoadgenOptions& opt);

/// The deterministic op stream for one client thread: a pure function
/// of (opt.seed, opt mix parameters, thread_index). Thin wrapper over
/// rt::generate_stream.
std::vector<GenOp> generate_ops(const LoadgenOptions& opt,
                                std::size_t thread_index);

struct LoadgenResult {
  LoadgenOptions opt;
  std::uint64_t puts = 0;      ///< ok puts
  std::uint64_t gets = 0;      ///< ok gets (hits)
  std::uint64_t dels = 0;      ///< ok dels
  std::uint64_t not_found = 0; ///< clean misses (get/del on absent key)
  std::uint64_t rejected = 0;  ///< backpressure rejections (queue full)
  std::uint64_t overloaded = 0;  ///< QoS sheds (rate limit / pressure)
  std::uint64_t retry_after_hints = 0;  ///< overloaded results with a hint
  std::uint64_t errors = 0;    ///< anything else (oom, auth, ...)
  double wall_s = 0.0;
  double ops_per_sec = 0.0;    ///< completed (non-shed) ops / wall
  /// Per-op submit-to-completion latency over *completed* ops only --
  /// rejected and overloaded ops never reach a worker, so admitting
  /// them into the histogram would fake sub-microsecond "latencies".
  obs::HistogramSummary latency;
  /// FNV-1a over every (thread, op type, key index, result code, get
  /// checksum) in submission order, folded per thread then combined in
  /// thread order. Identical streams + identical execution order =>
  /// identical digest.
  std::uint64_t result_digest = 0;
};

LoadgenResult run_loadgen(const LoadgenOptions& opt);

std::string loadgen_csv_header();
std::string loadgen_csv_row(const LoadgenResult& r);

// --- Multi-tenant QoS scenario (DESIGN.md §12) -----------------------
//
// One RuntimeServer shared by N tenants, each with its own priority,
// weight, rate limits, memory quota, and client threads. Normal
// tenants replay a fixed seed-deterministic stream (optionally pacing
// batches to stay under their own quota and honoring retry-after
// hints); an *abusive* tenant cycles its stream flat-out, ignoring
// hints, until every normal tenant has finished. A sampler thread
// checks the cap/accounting invariants (`used() <= capacity()`,
// sum-of-tenant-bytes >= aggregate) continuously, plus exact equality
// after quiesce.

struct QosTenantSpec {
  std::string name = "tenant";
  std::uint32_t priority = 3;       ///< 0 = shed first .. kTopPriority
  std::uint32_t weight = 1;         ///< DWRR share
  double ops_per_s = 0.0;           ///< admission rate (0 = unlimited)
  double ops_burst = 0.0;
  double bytes_per_s = 0.0;
  Bytes memory_quota = 0;           ///< resident bytes (0 = unlimited)
  std::size_t client_threads = 1;
  std::size_t ops_per_thread = 1000;  ///< abusive: stream length, cycled
  std::size_t batch = 2;            ///< ops in flight per client
  std::uint32_t pace_us = 0;        ///< sleep between batches
  bool abusive = false;  ///< cycle until others finish; ignore hints
};

struct QosOptions {
  std::vector<QosTenantSpec> tenants;
  std::size_t server_threads = 4;
  std::size_t shards = 16;
  Bytes value_size = 1024;
  double get_fraction = 0.5;
  double del_fraction = 0.0;
  std::size_t key_space = 4096;     ///< per-tenant keys ("<name>:k<i>")
  Bytes capacity = 256 * units::MiB;
  std::size_t queue_capacity = 256;
  std::uint64_t seed = 1;
  std::uint32_t service_time_us = 200;
  std::string auth_token = "rt";
};

struct QosTenantResult {
  std::string name;
  std::uint32_t priority = 0;
  std::uint32_t weight = 0;
  std::uint64_t submitted = 0;  ///< offered ops, shed or not
  std::uint64_t ok = 0;
  std::uint64_t not_found = 0;
  std::uint64_t rejected = 0;    ///< queue-full (Errc::rejected)
  std::uint64_t overloaded = 0;  ///< QoS sheds (Errc::overloaded)
  std::uint64_t retry_after_hints = 0;  ///< sheds carrying a hint > 0
  std::uint64_t errors = 0;
  double ops_per_sec = 0.0;      ///< completed ops / wall
  obs::HistogramSummary latency; ///< completed ops only
};

struct QosRunResult {
  std::vector<QosTenantResult> tenants;  ///< in spec order
  double wall_s = 0.0;
  bool accounting_ok = true;  ///< sampled + quiesce invariants held
  std::string accounting_msg; ///< first violation, when !accounting_ok
};

QosRunResult run_qos_scenario(const QosOptions& opt);

/// The adversarial isolation experiment: run the scenario twice -- once
/// without the abusive tenants (baseline) and once with them -- and
/// compare each normal tenant's p99 against its own baseline.
struct QosScenarioResult {
  QosRunResult baseline;     ///< abusive tenants excluded
  QosRunResult adversarial;  ///< full tenant set
  /// max over normal tenants of p99(adversarial) / p99(baseline).
  double worst_isolation = 0.0;
  /// Abusers were shed by policy (overloaded), not queue-full noise.
  bool abuser_shed_via_overload = false;
};

QosScenarioResult run_qos_adversarial(const QosOptions& opt);

/// The stock adversarial configuration for bench/loadgen --qos and
/// scripts/check.sh --qos: `small` under-quota tenants plus one abusive
/// tenant offered far past its ops/s bucket.
QosOptions default_qos_options(std::size_t small_tenants, std::uint64_t seed);

std::string qos_csv_header();
std::string qos_csv_row(std::string_view scenario, const QosTenantResult& r,
                        double isolation_p99 = 0.0);

}  // namespace memfss::rt
