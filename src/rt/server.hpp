// RuntimeServer: the multithreaded front-end over ShardedStore -- the
// real-traffic counterpart of the simulator's kvstore::Server.
//
// Clients submit put/get/del/exists/auth operations (singly or in
// batches) on behalf of a *tenant* (a slot in rt::TenantRegistry; slot
// 0 is the default tenant, so single-tenant callers need not care).
// Each op is routed to the worker that owns the key's shard (shard
// index mod pool size), executes there, and completes a future.
//
// Admission runs three gates, in order (DESIGN.md §12):
//
//   1. rate: the tenant's ops/s and bytes/s token buckets. An
//      over-rate op completes immediately with Errc::overloaded and a
//      retry-after hint -- the burster is shed no matter how idle the
//      system is, so it can never displace under-quota tenants.
//   2. pressure: when the owning worker's occupancy crosses shed_at,
//      lower-priority tenants are shed (Errc::overloaded + hint) in
//      priority order -- writes a notch earlier than reads -- while
//      kTopPriority tenants are never pressure-shed. Between degrade_at
//      and shed_at the op is still admitted but executes the cheap
//      path (the simulated remote service_time is dropped).
//   3. queue: the tenant's own lane in the owning worker. A full lane
//      completes the op with Errc::rejected (queue-full, distinct from
//      the policy shed) without blocking the submitter.
//
// Admitted ops are drained by deficit-weighted round robin across
// tenant lanes (rt::ThreadPool), so a deep abusive lane cannot delay
// other tenants' ops beyond its weight share.
//
// An optional per-op service time models the remote-access latency of a
// disaggregated deployment (NIC + fabric round trip); workers sleep it
// off before touching the shard, so a latency-bound workload scales
// with worker count the way remote memory does, independent of host
// core count. The load generator uses this for its scaling sweeps.
//
// Metrics (per-op latency histograms, throughput counters, queue-depth
// gauge, per-tenant admitted/overloaded/rejected/bytes counters) feed
// an obs::MetricsRegistry behind a mutex-guarded sink.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "kvstore/blob.hpp"
#include "rt/metrics_sink.hpp"
#include "rt/sharded_store.hpp"
#include "rt/tenant_registry.hpp"
#include "rt/thread_pool.hpp"

namespace memfss::rt {

struct Op {
  enum class Type { put, get, del, exists, auth };
  Type type = Type::get;
  std::string key;             ///< ignored by auth
  kvstore::Blob value;         ///< put only
  std::uint32_t tenant = 0;    ///< TenantRegistry slot (0 = default)
};

constexpr std::string_view op_type_name(Op::Type t) {
  switch (t) {
    case Op::Type::put: return "put";
    case Op::Type::get: return "get";
    case Op::Type::del: return "del";
    case Op::Type::exists: return "exists";
    case Op::Type::auth: return "auth";
  }
  return "unknown";
}

constexpr bool op_is_write(Op::Type t) {
  return t == Op::Type::put || t == Op::Type::del;
}

struct OpResult {
  Errc code = Errc::ok;
  kvstore::Blob value;     ///< get: the fetched blob
  bool found = false;      ///< exists: presence
  /// Shard serialization index. Engaged iff the op reached its shard
  /// (put/get/del that were admitted and executed); disengaged for
  /// rejected/overloaded ops and for exists/auth, so a shed op can
  /// never be mistaken for one that ran.
  std::optional<std::uint64_t> seq;
  double latency_s = 0.0;    ///< submit-to-completion wall time
  /// overloaded only: seconds the client should wait before retrying.
  double retry_after_s = 0.0;
};

class RuntimeServer {
 public:
  struct Options {
    std::size_t threads = 1;            ///< worker threads
    std::size_t queue_capacity = 1024;  ///< per-worker aggregate queue bound
    /// Simulated remote-access latency applied per op inside the worker
    /// (0 = pure in-memory execution).
    std::chrono::microseconds service_time{0};
    /// Tenant table for admission/fairness. nullptr = the server owns a
    /// private registry holding only the default tenant (pre-QoS
    /// behavior).
    TenantRegistry* tenants = nullptr;
    // Overload ladder, in worker-occupancy fractions [0, 1]:
    double degrade_at = 0.50;  ///< drop service_time modeling (cheap path)
    double shed_at = 0.75;     ///< start shedding lowest-priority tenants
    double write_shed_bias = 0.10;  ///< writes shed this much earlier
    double retry_after_base_s = 0.005;  ///< pressure-shed hint scale
  };

  RuntimeServer(ShardedStore& store, Options opt);
  ~RuntimeServer();
  RuntimeServer(const RuntimeServer&) = delete;
  RuntimeServer& operator=(const RuntimeServer&) = delete;

  std::size_t threads() const { return pool_.size(); }
  TenantRegistry& tenants() { return *tenants_; }
  const TenantRegistry& tenants() const { return *tenants_; }

  /// Completion callback for submit_async().
  using Completion = std::function<void(OpResult)>;

  /// Submit one operation; the future completes when the owning worker
  /// has executed it (or immediately, with Errc::overloaded /
  /// Errc::rejected, when admission sheds it).
  std::future<OpResult> submit(const std::string& token, Op op);

  /// Callback-style submit: `done` runs exactly once -- on the owning
  /// worker thread for executed ops, or inline on the submitter's
  /// thread when admission sheds the op. This is the path the TCP
  /// front-end uses: no future/promise allocation per network request,
  /// and the callback can hand the result straight back to the
  /// reactor's completion queue.
  void submit_async(const std::string& token, Op op, Completion done);

  /// Closed-loop batch: submit every op, then wait for all results
  /// (returned in input order).
  std::vector<OpResult> run_batch(const std::string& token,
                                  std::vector<Op> ops);

  MetricsSink& metrics() { return metrics_; }
  const MetricsSink& metrics() const { return metrics_; }

  /// Drain queues and join workers. Idempotent; the destructor calls it.
  /// Every already-queued op still executes and resolves its future;
  /// ops submitted after the stop resolve with Errc::rejected.
  void shutdown() { pool_.stop(); }

 private:
  OpResult execute(const std::string& token, Op& op);
  double now_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_).count();
  }

  ShardedStore& store_;
  Options opt_;
  std::unique_ptr<TenantRegistry> owned_tenants_;  ///< when opt.tenants null
  TenantRegistry* tenants_;
  std::chrono::steady_clock::time_point epoch_;
  MetricsSink metrics_;
  ThreadPool pool_;  // last member: workers die before anything they use
};

}  // namespace memfss::rt
