// RuntimeServer: the multithreaded front-end over ShardedStore -- the
// real-traffic counterpart of the simulator's kvstore::Server.
//
// Clients submit put/get/del/exists/auth operations (singly or in
// batches); each op is routed to the worker that owns the key's shard
// (shard index mod pool size), executes there, and completes a future.
// Admission control is the pool's bounded per-worker queue: when the
// owning worker's queue is full the op completes immediately with
// Errc::rejected, never blocking the submitter -- the same backpressure
// taxonomy the sim path uses (common/result.hpp).
//
// An optional per-op service time models the remote-access latency of a
// disaggregated deployment (NIC + fabric round trip); workers sleep it
// off before touching the shard, so a latency-bound workload scales
// with worker count the way remote memory does, independent of host
// core count. The load generator uses this for its scaling sweeps.
//
// Metrics (per-op latency histograms, throughput counters, queue-depth
// gauge) feed an obs::MetricsRegistry behind a mutex-guarded sink.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "kvstore/blob.hpp"
#include "rt/metrics_sink.hpp"
#include "rt/sharded_store.hpp"
#include "rt/thread_pool.hpp"

namespace memfss::rt {

struct Op {
  enum class Type { put, get, del, exists, auth };
  Type type = Type::get;
  std::string key;       ///< ignored by auth
  kvstore::Blob value;   ///< put only
};

constexpr std::string_view op_type_name(Op::Type t) {
  switch (t) {
    case Op::Type::put: return "put";
    case Op::Type::get: return "get";
    case Op::Type::del: return "del";
    case Op::Type::exists: return "exists";
    case Op::Type::auth: return "auth";
  }
  return "unknown";
}

struct OpResult {
  Errc code = Errc::ok;
  kvstore::Blob value;     ///< get: the fetched blob
  bool found = false;      ///< exists: presence
  std::uint64_t seq = 0;   ///< shard serialization index (0 if rejected)
  double latency_s = 0.0;  ///< submit-to-completion wall time
};

class RuntimeServer {
 public:
  struct Options {
    std::size_t threads = 1;            ///< worker threads
    std::size_t queue_capacity = 1024;  ///< per-worker queue bound
    /// Simulated remote-access latency applied per op inside the worker
    /// (0 = pure in-memory execution).
    std::chrono::microseconds service_time{0};
  };

  RuntimeServer(ShardedStore& store, Options opt);
  ~RuntimeServer();
  RuntimeServer(const RuntimeServer&) = delete;
  RuntimeServer& operator=(const RuntimeServer&) = delete;

  std::size_t threads() const { return pool_.size(); }

  /// Submit one operation; the future completes when the owning worker
  /// has executed it (immediately, with Errc::rejected, on backpressure).
  std::future<OpResult> submit(const std::string& token, Op op);

  /// Closed-loop batch: submit every op, then wait for all results
  /// (returned in input order).
  std::vector<OpResult> run_batch(const std::string& token,
                                  std::vector<Op> ops);

  MetricsSink& metrics() { return metrics_; }
  const MetricsSink& metrics() const { return metrics_; }

  /// Drain queues and join workers. Idempotent; the destructor calls it.
  void shutdown() { pool_.stop(); }

 private:
  OpResult execute(const std::string& token, Op& op);

  ShardedStore& store_;
  Options opt_;
  MetricsSink metrics_;
  ThreadPool pool_;  // last member: workers die before anything they use
};

}  // namespace memfss::rt
