// Fixed pool of worker threads, each with its own bounded FIFO queue.
//
// The runtime front-end pins every shard to one worker (shard index mod
// pool size), so jobs touching one shard execute in submission order on
// one thread and the per-shard queues give natural backpressure: when a
// worker's queue is full, try_post() fails immediately and the caller
// turns that into Errc::rejected instead of queueing unbounded work --
// the same admission-control shape kvstore::Server uses in the sim.
//
// Shutdown drains: stop() stops admission, lets every worker finish the
// jobs already queued, then joins. The destructor calls stop().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace memfss::rt {

class ThreadPool {
 public:
  using Job = std::function<void()>;

  struct Options {
    std::size_t threads = 1;         ///< worker count (>= 1)
    std::size_t queue_capacity = 1024;  ///< per-worker queue bound (>= 1)
  };

  explicit ThreadPool(Options opt);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue `job` on worker `worker % size()`. Returns false (job not
  /// taken) when that worker's queue is at capacity or the pool is
  /// stopping -- the caller's backpressure signal.
  bool try_post(std::size_t worker, Job job);

  /// Current queue length of one worker (jobs waiting, not the one
  /// executing).
  std::size_t queue_depth(std::size_t worker) const;

  /// Stop admission, drain queued jobs, join all workers. Idempotent.
  void stop();

 private:
  struct Worker {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<Job> q;
    std::thread th;
  };

  void run(Worker& w);

  std::size_t cap_;
  std::atomic<bool> stopping_{false};
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace memfss::rt
