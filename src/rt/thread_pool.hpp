// Fixed pool of worker threads; each worker owns a set of bounded
// per-tenant sub-queues ("lanes") drained by deficit-weighted round
// robin.
//
// The runtime front-end pins every shard to one worker (shard index mod
// pool size), so jobs touching one shard execute in submission order on
// one thread. Within a worker, each tenant posts into its own lane:
//
//   - admission: a lane at its own capacity, or a worker at its
//     aggregate capacity, fails try_post() immediately -- the caller
//     turns that into Errc::rejected. A tenant can therefore fill only
//     its *own* lane; it cannot occupy another tenant's queue space.
//   - dispatch: the worker serves lanes round-robin, granting each
//     non-empty lane a deficit of `weight` job credits per visit and
//     serving until the credit or the lane is exhausted (unit job cost,
//     so the classic DRR quantum arithmetic has no fractional residue).
//     A tenant with weight w gets w/Σw of a contended worker no matter
//     how deep any other tenant's lane is -- the fair-share half of the
//     QoS model (DESIGN.md §12).
//
// Lane 0 is the default tenant; the tenant-less try_post() overload
// posts there with weight 1, preserving the pre-QoS FIFO behavior for
// single-tenant callers.
//
// Shutdown drains: stop() stops admission, lets every worker finish all
// jobs queued in every lane, then joins. The destructor calls stop().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace memfss::rt {

class ThreadPool {
 public:
  using Job = std::function<void()>;

  struct Options {
    std::size_t threads = 1;            ///< worker count (>= 1)
    std::size_t queue_capacity = 1024;  ///< per-worker aggregate bound (>= 1)
  };

  explicit ThreadPool(Options opt);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }
  std::size_t capacity() const { return cap_; }  ///< per-worker aggregate

  /// Enqueue `job` on worker `worker % size()` in tenant lane `lane`
  /// with the given round-robin weight and lane capacity (both >= 1;
  /// lane_cap additionally clamps to the worker aggregate). Returns
  /// false (job not taken) when the lane or the worker is full or the
  /// pool is stopping -- the caller's backpressure signal.
  bool try_post(std::size_t worker, std::uint32_t lane, std::uint32_t weight,
                std::size_t lane_cap, Job job);

  /// Tenant-less convenience: lane 0, weight 1, lane bound = worker
  /// bound (the pre-QoS single-queue behavior).
  bool try_post(std::size_t worker, Job job) {
    return try_post(worker, 0, 1, cap_, std::move(job));
  }

  /// Jobs waiting on one worker across all lanes (not the one
  /// executing).
  std::size_t queue_depth(std::size_t worker) const;
  /// Jobs waiting in one lane of one worker.
  std::size_t queue_depth(std::size_t worker, std::uint32_t lane) const;
  /// queue_depth / capacity for one worker -- the overload signal the
  /// server's shedding policy keys off.
  double occupancy(std::size_t worker) const;

  /// Stop admission, drain every lane, join all workers. Idempotent.
  void stop();

 private:
  struct Lane {
    std::deque<Job> q;
    std::uint32_t weight = 1;
    std::uint32_t deficit = 0;  ///< job credits left in the current visit
  };

  struct Worker {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::vector<std::unique_ptr<Lane>> lanes;  ///< slot-indexed, lazy
    std::size_t total = 0;   ///< queued jobs across lanes
    std::size_t cursor = 0;  ///< round-robin position
    std::thread th;
  };

  /// Pop the next job by deficit round robin. Caller holds w.mu and
  /// guarantees w.total > 0.
  Job take_locked(Worker& w);
  void run(Worker& w);

  std::size_t cap_;
  std::atomic<bool> stopping_{false};
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace memfss::rt
