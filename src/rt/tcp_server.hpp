// TcpServer: the network front-end over rt::RuntimeServer (DESIGN.md
// §13) -- the step from "concurrent library" to "service a wire can
// hit".
//
// Threading model: N *reactor* threads, each owning one epoll instance
// and its own SO_REUSEPORT listening socket on the shared port, so the
// kernel shards incoming connections across reactors with no accept
// lock. A connection lives its whole life on the reactor that accepted
// it -- every read, decode, and write for it happens on that one
// thread, so per-connection state needs no locks. Frames decode into
// rt::Op and dispatch through RuntimeServer::submit_async, which runs
// the existing admission ladder (rate -> pressure -> lane, DESIGN.md
// §12) and executes on the shard-pinned workers; completions are
// encoded on the worker thread and handed back to the owning reactor
// through a mutex-guarded completion queue + eventfd wakeup, then
// written out of the connection's write buffer (EPOLLOUT armed only
// while a partial write is outstanding).
//
// Protocol: netio::Frame (length-prefixed binary, pipelined). AUTH
// binds the token in the frame's key field to the connection; every
// subsequent request uses it. OVERLOADED/REJECTED sheds travel back as
// ordinary response frames carrying the Errc and the retry-after hint
// in microseconds -- the QoS contract survives the wire intact.
//
// Slow clients: a connection whose write buffer exceeds
// `max_write_buffer` (it is not draining responses as fast as it
// pipelines requests) is disconnected and counted in
// rt.net.slow_client_disconnects -- one stalled reader must not pin
// response memory for everyone else. A malformed stream (bad magic,
// oversized length prefix, inconsistent lengths) gets one final
// protocol-error frame (status invalid_argument, kFlagProtocolError)
// and the connection is closed after it flushes.
//
// Shutdown drains: stop accepting, keep serving until every connection
// has zero in-flight ops and an empty write buffer (responses for
// frames already on the wire still go out), then close; connections
// still busy at `drain_timeout` are force-closed. Completion callbacks
// outlive the reactors safely -- they hold the completion queue by
// shared_ptr and post into it only while it is open.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.hpp"
#include "rt/server.hpp"

namespace memfss::rt {

class TcpServer {
 public:
  struct Options {
    std::uint16_t port = 0;     ///< 0 = ephemeral (see port())
    std::size_t reactors = 1;   ///< epoll event-loop threads (>= 1)
    /// Decoder bound on one frame body; an advertised length past this
    /// is a protocol error, not an allocation.
    std::size_t max_frame_body = 16u << 20;
    /// Per-connection write-buffer bound; exceeding it disconnects the
    /// slow client.
    std::size_t max_write_buffer = 4u << 20;
    /// SO_SNDBUF for accepted sockets (0 = kernel default). Tests use
    /// a tiny value to trip the slow-client path quickly.
    int so_sndbuf = 0;
    /// How long shutdown() waits for busy connections to drain before
    /// force-closing them.
    std::chrono::milliseconds drain_timeout{5000};
    /// Reap a connection with no in-flight ops, no unsent responses,
    /// and no traffic for this long (0 = never). Chaos blackholes and
    /// vanished clients must not pin fds forever; counted in
    /// rt.net.idle_reaps.
    std::chrono::milliseconds idle_timeout{0};
  };

  /// Binds, listens, and starts the reactors; throws std::runtime_error
  /// if the socket setup fails (ports are host resources -- failing to
  /// bind is a constructor-level error, not a recoverable op).
  TcpServer(RuntimeServer& server, Options opt);
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The bound port (the ephemeral one when Options::port was 0).
  std::uint16_t port() const { return port_; }
  std::size_t reactors() const { return reactors_.size(); }

  /// Graceful drain (see file comment). Idempotent; the destructor
  /// calls it.
  void shutdown();

 private:
  struct Reactor;

  RuntimeServer& server_;
  Options opt_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopped_{false};
  /// Live connection count across reactors (feeds rt.net.connections).
  std::atomic<long> conn_count_{0};
  std::vector<std::unique_ptr<Reactor>> reactors_;
};

}  // namespace memfss::rt
