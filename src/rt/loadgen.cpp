#include "rt/loadgen.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "hash/hashes.hpp"

namespace memfss::rt {

namespace {

/// Cumulative Zipf(theta) distribution over `n` ranks, normalized to 1.
std::vector<double> zipf_cdf(std::size_t n, double theta) {
  std::vector<double> cdf(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf[i] = total;
  }
  for (auto& c : cdf) c /= total;
  return cdf;
}

std::uint32_t sample_key(Rng& rng, const std::vector<double>& cdf,
                         std::size_t key_space) {
  if (cdf.empty())
    return static_cast<std::uint32_t>(rng.uniform_u64(0, key_space - 1));
  const double u = rng.next_double();
  const auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
  return static_cast<std::uint32_t>(
      std::min<std::size_t>(static_cast<std::size_t>(it - cdf.begin()),
                            key_space - 1));
}

/// Deterministic payload: a cheap byte pattern keyed by (key, op index)
/// so overwrites change content and a replayed stream reproduces it.
kvstore::Blob make_value(Bytes size, std::uint32_t key_index,
                         std::size_t op_index) {
  std::vector<std::uint8_t> bytes(size);
  std::uint64_t x = (static_cast<std::uint64_t>(key_index) << 32) ^
                    static_cast<std::uint64_t>(op_index);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(x = splitmix64(x));
  return kvstore::Blob::materialized(std::move(bytes));
}

}  // namespace

std::string loadgen_key(std::uint32_t key_index) {
  return "k" + std::to_string(key_index);
}

std::vector<GenOp> generate_ops(const LoadgenOptions& opt,
                                std::size_t thread_index) {
  // Per-thread stream seeded by mixing the run seed with the thread
  // index -- independent across threads, reproducible across runs.
  std::uint64_t s = opt.seed ^ (0x9e3779b97f4a7c15ull *
                                (static_cast<std::uint64_t>(thread_index) + 1));
  Rng rng(splitmix64(s));
  const auto cdf = opt.zipf_theta > 0.0
                       ? zipf_cdf(opt.key_space, opt.zipf_theta)
                       : std::vector<double>{};
  std::vector<GenOp> ops;
  ops.reserve(opt.ops_per_thread);
  for (std::size_t i = 0; i < opt.ops_per_thread; ++i) {
    GenOp op;
    const double u = rng.next_double();
    if (u < opt.get_fraction)
      op.type = Op::Type::get;
    else if (u < opt.get_fraction + opt.del_fraction)
      op.type = Op::Type::del;
    else
      op.type = Op::Type::put;
    op.key_index = sample_key(rng, cdf, opt.key_space);
    ops.push_back(op);
  }
  return ops;
}

LoadgenResult run_loadgen(const LoadgenOptions& opt) {
  LoadgenResult res;
  res.opt = opt;

  ShardedStore store({opt.shards, opt.capacity, opt.auth_token});
  RuntimeServer server(
      store, {opt.server_threads, opt.queue_capacity,
              std::chrono::microseconds(opt.service_time_us)});

  // Streams are generated before any thread starts so the generator's
  // cost never pollutes the measured window.
  std::vector<std::vector<GenOp>> streams;
  streams.reserve(opt.client_threads);
  for (std::size_t t = 0; t < opt.client_threads; ++t)
    streams.push_back(generate_ops(opt, t));

  struct ThreadTally {
    std::uint64_t puts = 0, gets = 0, dels = 0, not_found = 0, rejected = 0,
                  errors = 0;
    std::uint64_t digest = hash::fnv1a_seed();
  };
  std::vector<ThreadTally> tallies(opt.client_threads);

  auto client = [&](std::size_t t) {
    auto& tally = tallies[t];
    const auto& stream = streams[t];
    std::size_t i = 0;
    while (i < stream.size()) {
      const std::size_t n = std::min(opt.batch, stream.size() - i);
      std::vector<Op> batch;
      batch.reserve(n);
      for (std::size_t j = 0; j < n; ++j) {
        const GenOp& g = stream[i + j];
        Op op;
        op.type = g.type;
        op.key = loadgen_key(g.key_index);
        if (g.type == Op::Type::put)
          op.value = make_value(opt.value_size, g.key_index, i + j);
        batch.push_back(std::move(op));
      }
      const auto results = server.run_batch(opt.auth_token, std::move(batch));
      for (std::size_t j = 0; j < n; ++j) {
        const GenOp& g = stream[i + j];
        const OpResult& r = results[j];
        std::uint64_t& d = tally.digest;
        d = hash::fnv1a_byte(d, static_cast<unsigned char>(g.type));
        d = hash::fnv1a_decimal(d, g.key_index);
        d = hash::fnv1a_byte(d, static_cast<unsigned char>(r.code));
        switch (r.code) {
          case Errc::ok:
            if (g.type == Op::Type::put) ++tally.puts;
            if (g.type == Op::Type::del) ++tally.dels;
            if (g.type == Op::Type::get) {
              ++tally.gets;
              d = hash::fnv1a_decimal(d, r.value.checksum());
            }
            break;
          case Errc::not_found: ++tally.not_found; break;
          case Errc::rejected: ++tally.rejected; break;
          default: ++tally.errors; break;
        }
      }
      i += n;
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(opt.client_threads);
  for (std::size_t t = 0; t < opt.client_threads; ++t)
    threads.emplace_back(client, t);
  for (auto& th : threads) th.join();
  res.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0).count();

  std::uint64_t digest = hash::fnv1a_seed();
  for (const auto& tally : tallies) {
    res.puts += tally.puts;
    res.gets += tally.gets;
    res.dels += tally.dels;
    res.not_found += tally.not_found;
    res.rejected += tally.rejected;
    res.errors += tally.errors;
    digest = hash::fnv1a_decimal(digest, tally.digest);
  }
  res.result_digest = digest;
  const std::uint64_t total =
      static_cast<std::uint64_t>(opt.client_threads) * opt.ops_per_thread;
  const std::uint64_t completed = total - res.rejected;
  res.ops_per_sec =
      res.wall_s > 0.0 ? static_cast<double>(completed) / res.wall_s : 0.0;
  res.latency = server.metrics().histogram_summary("rt.op.latency_s");
  return res;
}

std::string loadgen_csv_header() {
  return csv_row({"client_threads", "server_threads", "shards",
                  "ops_per_thread", "batch", "value_size", "get_fraction",
                  "del_fraction", "zipf_theta", "service_time_us", "seed",
                  "wall_s", "ops_per_sec", "puts", "gets", "dels",
                  "not_found", "rejected", "errors", "lat_p50_s",
                  "lat_p95_s", "lat_p99_s", "result_digest"});
}

std::string loadgen_csv_row(const LoadgenResult& r) {
  auto num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };
  const auto& o = r.opt;
  return csv_row({std::to_string(o.client_threads),
                  std::to_string(o.server_threads), std::to_string(o.shards),
                  std::to_string(o.ops_per_thread), std::to_string(o.batch),
                  std::to_string(o.value_size), num(o.get_fraction),
                  num(o.del_fraction), num(o.zipf_theta),
                  std::to_string(o.service_time_us), std::to_string(o.seed),
                  num(r.wall_s), num(r.ops_per_sec), std::to_string(r.puts),
                  std::to_string(r.gets), std::to_string(r.dels),
                  std::to_string(r.not_found), std::to_string(r.rejected),
                  std::to_string(r.errors), num(r.latency.p50),
                  num(r.latency.p95), num(r.latency.p99),
                  std::to_string(r.result_digest)});
}

}  // namespace memfss::rt
