#include "rt/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <thread>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "hash/hashes.hpp"
#include "rt/tenant_registry.hpp"

namespace memfss::rt {

StreamOptions stream_options(const LoadgenOptions& opt) {
  StreamOptions s;
  s.seed = opt.seed;
  s.ops_per_thread = opt.ops_per_thread;
  s.get_fraction = opt.get_fraction;
  s.del_fraction = opt.del_fraction;
  s.zipf_theta = opt.zipf_theta;
  s.key_space = opt.key_space;
  return s;
}

std::vector<GenOp> generate_ops(const LoadgenOptions& opt,
                                std::size_t thread_index) {
  return generate_stream(stream_options(opt), thread_index);
}

LoadgenResult run_loadgen(const LoadgenOptions& opt) {
  LoadgenResult res;
  res.opt = opt;

  ShardedStore store({opt.shards, opt.capacity, opt.auth_token});
  RuntimeServer server(
      store, {opt.server_threads, opt.queue_capacity,
              std::chrono::microseconds(opt.service_time_us)});

  // Streams are generated before any thread starts so the generator's
  // cost never pollutes the measured window.
  std::vector<std::vector<GenOp>> streams;
  streams.reserve(opt.client_threads);
  for (std::size_t t = 0; t < opt.client_threads; ++t)
    streams.push_back(generate_ops(opt, t));

  struct ThreadTally {
    std::uint64_t puts = 0, gets = 0, dels = 0, not_found = 0, rejected = 0,
                  overloaded = 0, retry_after_hints = 0, errors = 0;
    std::uint64_t digest = hash::fnv1a_seed();
  };
  std::vector<ThreadTally> tallies(opt.client_threads);

  auto client = [&](std::size_t t) {
    auto& tally = tallies[t];
    const auto& stream = streams[t];
    std::size_t i = 0;
    while (i < stream.size()) {
      const std::size_t n = std::min(opt.batch, stream.size() - i);
      std::vector<Op> batch;
      batch.reserve(n);
      for (std::size_t j = 0; j < n; ++j) {
        const GenOp& g = stream[i + j];
        Op op;
        op.type = g.type;
        op.key = loadgen_key(g.key_index);
        if (g.type == Op::Type::put)
          op.value = stream_value(opt.value_size, g.key_index, i + j);
        batch.push_back(std::move(op));
      }
      const auto results = server.run_batch(opt.auth_token, std::move(batch));
      for (std::size_t j = 0; j < n; ++j) {
        const GenOp& g = stream[i + j];
        const OpResult& r = results[j];
        tally.digest = fold_result(tally.digest, g, r.code,
                                   r.value.checksum());
        switch (r.code) {
          case Errc::ok:
            if (g.type == Op::Type::put) ++tally.puts;
            if (g.type == Op::Type::del) ++tally.dels;
            if (g.type == Op::Type::get) ++tally.gets;
            break;
          case Errc::not_found: ++tally.not_found; break;
          case Errc::rejected: ++tally.rejected; break;
          case Errc::overloaded:
            ++tally.overloaded;
            if (r.retry_after_s > 0.0) ++tally.retry_after_hints;
            break;
          default: ++tally.errors; break;
        }
      }
      i += n;
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(opt.client_threads);
  for (std::size_t t = 0; t < opt.client_threads; ++t)
    threads.emplace_back(client, t);
  for (auto& th : threads) th.join();
  res.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0).count();

  std::uint64_t digest = hash::fnv1a_seed();
  for (const auto& tally : tallies) {
    res.puts += tally.puts;
    res.gets += tally.gets;
    res.dels += tally.dels;
    res.not_found += tally.not_found;
    res.rejected += tally.rejected;
    res.overloaded += tally.overloaded;
    res.retry_after_hints += tally.retry_after_hints;
    res.errors += tally.errors;
    digest = hash::fnv1a_decimal(digest, tally.digest);
  }
  res.result_digest = digest;
  const std::uint64_t total =
      static_cast<std::uint64_t>(opt.client_threads) * opt.ops_per_thread;
  const std::uint64_t completed = total - res.rejected - res.overloaded;
  res.ops_per_sec =
      res.wall_s > 0.0 ? static_cast<double>(completed) / res.wall_s : 0.0;
  res.latency = server.metrics().histogram_summary("rt.op.latency_s");
  return res;
}

std::string loadgen_csv_header() {
  return csv_row({"client_threads", "server_threads", "shards",
                  "ops_per_thread", "batch", "value_size", "get_fraction",
                  "del_fraction", "zipf_theta", "service_time_us", "seed",
                  "wall_s", "ops_per_sec", "puts", "gets", "dels",
                  "not_found", "rejected", "overloaded",
                  "retry_after_hints", "errors", "lat_p50_s", "lat_p95_s",
                  "lat_p99_s", "result_digest"});
}

std::string loadgen_csv_row(const LoadgenResult& r) {
  auto num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };
  const auto& o = r.opt;
  return csv_row({std::to_string(o.client_threads),
                  std::to_string(o.server_threads), std::to_string(o.shards),
                  std::to_string(o.ops_per_thread), std::to_string(o.batch),
                  std::to_string(o.value_size), num(o.get_fraction),
                  num(o.del_fraction), num(o.zipf_theta),
                  std::to_string(o.service_time_us), std::to_string(o.seed),
                  num(r.wall_s), num(r.ops_per_sec), std::to_string(r.puts),
                  std::to_string(r.gets), std::to_string(r.dels),
                  std::to_string(r.not_found), std::to_string(r.rejected),
                  std::to_string(r.overloaded),
                  std::to_string(r.retry_after_hints),
                  std::to_string(r.errors), num(r.latency.p50),
                  num(r.latency.p95), num(r.latency.p99),
                  std::to_string(r.result_digest)});
}

// --- Multi-tenant QoS scenario ---------------------------------------

namespace {

std::string qos_key(const std::string& tenant, std::uint32_t key_index) {
  return tenant + ":k" + std::to_string(key_index);
}

struct QosTally {
  std::uint64_t submitted = 0, ok = 0, not_found = 0, rejected = 0,
                overloaded = 0, hints = 0, errors = 0;
  obs::Histogram latency;  ///< completed (ok / not_found) ops only
};

}  // namespace

QosRunResult run_qos_scenario(const QosOptions& opt) {
  QosRunResult res;
  TenantRegistry registry(opt.tenants.size() + 1);
  ShardedStore store({opt.shards, opt.capacity, opt.auth_token, &registry});
  RuntimeServer::Options sopt;
  sopt.threads = opt.server_threads;
  sopt.queue_capacity = opt.queue_capacity;
  sopt.service_time = std::chrono::microseconds(opt.service_time_us);
  sopt.tenants = &registry;
  RuntimeServer server(store, sopt);

  std::vector<std::uint32_t> tids;
  tids.reserve(opt.tenants.size());
  for (const auto& spec : opt.tenants) {
    TenantConfig cfg;
    cfg.name = spec.name;
    cfg.priority = spec.priority;
    cfg.weight = spec.weight;
    cfg.ops_per_s = spec.ops_per_s;
    cfg.ops_burst = spec.ops_burst;
    cfg.bytes_per_s = spec.bytes_per_s;
    cfg.memory_quota = spec.memory_quota;
    auto reg = registry.register_tenant(std::move(cfg));
    tids.push_back(reg.ok() ? reg.value() : 0);
  }

  // Per-(tenant, thread) op streams, reusing the single-tenant
  // generator with a tenant-mixed seed: deterministic across runs, so
  // baseline and adversarial runs offer identical small-tenant work.
  auto gen_stream = [&](std::size_t tenant_idx, std::size_t thread_idx) {
    LoadgenOptions lo;
    lo.seed = opt.seed ^ (0xa24baed4963ee407ull *
                          (static_cast<std::uint64_t>(tenant_idx) + 1));
    lo.ops_per_thread = opt.tenants[tenant_idx].ops_per_thread;
    lo.get_fraction = opt.get_fraction;
    lo.del_fraction = opt.del_fraction;
    lo.key_space = opt.key_space;
    return generate_ops(lo, thread_idx);
  };

  // Abusive tenants cycle their stream until every normal tenant is
  // done; the sampler keeps auditing until all clients have joined.
  std::atomic<bool> normals_done{false};
  std::atomic<bool> all_done{false};
  std::atomic<bool> acc_ok{true};
  std::mutex acc_mu;
  std::string acc_msg;
  auto acc_fail = [&](const std::string& msg) {
    bool expected = true;
    if (acc_ok.compare_exchange_strong(expected, false)) {
      std::lock_guard lk(acc_mu);
      acc_msg = msg;
    }
  };

  // Continuous invariants, each a single atomic read against a
  // constant, so the check is sound mid-race: the aggregate cap and
  // every tenant's quota. (Cross-atomic equality -- tenant bytes
  // summing to the aggregate -- is only defined at quiescence and is
  // checked after the clients join.)
  std::thread sampler([&] {
    while (!all_done.load(std::memory_order_acquire)) {
      if (store.used() > store.capacity())
        acc_fail("used() exceeded capacity() mid-run");
      for (std::size_t i = 0; i < tids.size(); ++i) {
        const Bytes quota = registry.memory_quota(tids[i]);
        if (quota != 0 && registry.memory_used(tids[i]) > quota)
          acc_fail("tenant " + opt.tenants[i].name + " exceeded quota");
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  struct ClientSlot {
    std::size_t tenant_idx;
    std::size_t thread_idx;
    QosTally tally;
  };
  std::vector<ClientSlot> slots;
  for (std::size_t ti = 0; ti < opt.tenants.size(); ++ti)
    for (std::size_t ci = 0; ci < opt.tenants[ti].client_threads; ++ci)
      slots.push_back({ti, ci, {}});

  auto client = [&](ClientSlot& slot) {
    const QosTenantSpec& spec = opt.tenants[slot.tenant_idx];
    const std::uint32_t tid = tids[slot.tenant_idx];
    const auto stream = gen_stream(slot.tenant_idx, slot.thread_idx);
    QosTally& tally = slot.tally;
    std::size_t i = 0;
    while (true) {
      if (i >= stream.size()) {
        if (!spec.abusive) break;
        if (normals_done.load(std::memory_order_acquire)) break;
        i = 0;  // abuser: cycle the stream until the others finish
      }
      const std::size_t n = std::min(spec.batch, stream.size() - i);
      std::vector<Op> batch;
      batch.reserve(n);
      for (std::size_t j = 0; j < n; ++j) {
        const GenOp& g = stream[i + j];
        Op op;
        op.type = g.type;
        op.key = qos_key(spec.name, g.key_index);
        op.tenant = tid;
        if (g.type == Op::Type::put)
          op.value = stream_value(opt.value_size, g.key_index, i + j);
        batch.push_back(std::move(op));
      }
      const auto results = server.run_batch(opt.auth_token, std::move(batch));
      double worst_hint_s = 0.0;
      for (const OpResult& r : results) {
        ++tally.submitted;
        switch (r.code) {
          case Errc::ok:
            ++tally.ok;
            tally.latency.add(r.latency_s);
            break;
          case Errc::not_found:
            ++tally.not_found;
            tally.latency.add(r.latency_s);
            break;
          case Errc::rejected:
            ++tally.rejected;
            break;
          case Errc::overloaded:
            ++tally.overloaded;
            if (r.retry_after_s > 0.0) {
              ++tally.hints;
              worst_hint_s = std::max(worst_hint_s, r.retry_after_s);
            }
            break;
          default:
            ++tally.errors;
            break;
        }
      }
      i += n;
      // Well-behaved tenants pace themselves and honor retry-after
      // hints (capped so a pathological hint cannot wedge a client);
      // abusers do neither -- that is what makes them abusive.
      if (!spec.abusive) {
        double sleep_s = spec.pace_us * 1e-6;
        sleep_s += std::min(worst_hint_s, 0.05);
        if (sleep_s > 0.0)
          std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
      } else if (spec.pace_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(spec.pace_us));
      }
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> normal_threads, abuser_threads;
  for (auto& slot : slots) {
    auto& group =
        opt.tenants[slot.tenant_idx].abusive ? abuser_threads : normal_threads;
    group.emplace_back(client, std::ref(slot));
  }
  for (auto& th : normal_threads) th.join();
  normals_done.store(true, std::memory_order_release);
  for (auto& th : abuser_threads) th.join();
  res.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0).count();
  all_done.store(true, std::memory_order_release);
  sampler.join();

  // Quiescent accounting: the per-tenant atomic counters, the shard
  // owner maps, and the aggregate must all agree exactly.
  Bytes shard_sum = 0;
  for (std::size_t s = 0; s < store.shard_count(); ++s)
    shard_sum += store.shard_recomputed_used(s);
  if (store.used() != shard_sum)
    acc_fail("quiesce: used() != recomputed shard sum");
  if (registry.total_resident() != store.used())
    acc_fail("quiesce: per-tenant bytes do not sum to aggregate");

  res.accounting_ok = acc_ok.load();
  {
    std::lock_guard lk(acc_mu);
    res.accounting_msg = acc_msg;
  }

  // Fold per-thread tallies into per-tenant results (spec order).
  res.tenants.resize(opt.tenants.size());
  std::vector<obs::Histogram> lat(opt.tenants.size());
  for (std::size_t ti = 0; ti < opt.tenants.size(); ++ti) {
    QosTenantResult& tr = res.tenants[ti];
    tr.name = opt.tenants[ti].name;
    tr.priority = opt.tenants[ti].priority;
    tr.weight = opt.tenants[ti].weight;
  }
  for (const auto& slot : slots) {
    QosTenantResult& tr = res.tenants[slot.tenant_idx];
    tr.submitted += slot.tally.submitted;
    tr.ok += slot.tally.ok;
    tr.not_found += slot.tally.not_found;
    tr.rejected += slot.tally.rejected;
    tr.overloaded += slot.tally.overloaded;
    tr.retry_after_hints += slot.tally.hints;
    tr.errors += slot.tally.errors;
    lat[slot.tenant_idx].merge(slot.tally.latency);
  }
  for (std::size_t ti = 0; ti < res.tenants.size(); ++ti) {
    QosTenantResult& tr = res.tenants[ti];
    tr.latency = lat[ti].summary();
    const std::uint64_t completed = tr.ok + tr.not_found;
    tr.ops_per_sec = res.wall_s > 0.0
                         ? static_cast<double>(completed) / res.wall_s
                         : 0.0;
  }
  return res;
}

QosScenarioResult run_qos_adversarial(const QosOptions& opt) {
  QosScenarioResult out;
  QosOptions baseline = opt;
  baseline.tenants.clear();
  for (const auto& spec : opt.tenants)
    if (!spec.abusive) baseline.tenants.push_back(spec);
  out.baseline = run_qos_scenario(baseline);
  out.adversarial = run_qos_scenario(opt);

  // Isolation: each normal tenant's p99 against its own baseline.
  for (const auto& adv : out.adversarial.tenants) {
    for (const auto& base : out.baseline.tenants) {
      if (base.name != adv.name) continue;
      if (base.latency.p99 > 0.0 && adv.latency.count > 0)
        out.worst_isolation =
            std::max(out.worst_isolation, adv.latency.p99 / base.latency.p99);
    }
  }
  // Abusers must be shed by policy (overloaded + hint), not by
  // queue-full rejections spilling out of their lane.
  bool any_abuser = false, shed_ok = true;
  for (std::size_t ti = 0; ti < opt.tenants.size(); ++ti) {
    if (!opt.tenants[ti].abusive) continue;
    any_abuser = true;
    const QosTenantResult& tr = out.adversarial.tenants[ti];
    if (tr.overloaded == 0 || tr.overloaded < tr.rejected) shed_ok = false;
  }
  out.abuser_shed_via_overload = any_abuser && shed_ok;
  return out;
}

QosOptions default_qos_options(std::size_t small_tenants, std::uint64_t seed) {
  QosOptions opt;
  opt.seed = seed;
  opt.server_threads = 4;
  opt.shards = 16;
  opt.queue_capacity = 256;
  opt.service_time_us = 200;
  opt.value_size = 1024;
  opt.get_fraction = 0.5;
  opt.del_fraction = 0.05;
  opt.key_space = 512;
  opt.capacity = 256 * units::MiB;
  for (std::size_t i = 0; i < small_tenants; ++i) {
    QosTenantSpec s;
    s.name = "small" + std::to_string(i);
    s.priority = 5;
    s.weight = 2;
    s.ops_per_s = 4000;   // never binds at the paced offered rate
    s.memory_quota = 16 * units::MiB;
    s.client_threads = 1;
    s.ops_per_thread = 600;
    s.batch = 2;
    s.pace_us = 1500;  // ~1k ops/s offered, well under quota
    opt.tenants.push_back(std::move(s));
  }
  QosTenantSpec abuser;
  abuser.name = "abuser";
  abuser.priority = 0;   // best-effort: first to pressure-shed
  abuser.weight = 1;
  abuser.ops_per_s = 400;  // offered load lands >= 10x past this
  abuser.ops_burst = 50;
  abuser.memory_quota = 4 * units::MiB;
  abuser.client_threads = 2;
  abuser.ops_per_thread = 4000;
  abuser.batch = 32;
  abuser.pace_us = 200;  // bounds the spin; still wildly over quota
  abuser.abusive = true;
  opt.tenants.push_back(std::move(abuser));
  return opt;
}

std::string qos_csv_header() {
  return csv_row({"scenario", "tenant", "priority", "weight", "submitted",
                  "ok", "not_found", "rejected", "overloaded",
                  "retry_after_hints", "errors", "ops_per_sec", "lat_p50_s",
                  "lat_p95_s", "lat_p99_s", "isolation_p99"});
}

std::string qos_csv_row(std::string_view scenario, const QosTenantResult& r,
                        double isolation_p99) {
  auto num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };
  return csv_row({std::string(scenario), r.name, std::to_string(r.priority),
                  std::to_string(r.weight), std::to_string(r.submitted),
                  std::to_string(r.ok), std::to_string(r.not_found),
                  std::to_string(r.rejected), std::to_string(r.overloaded),
                  std::to_string(r.retry_after_hints),
                  std::to_string(r.errors), num(r.ops_per_sec),
                  num(r.latency.p50), num(r.latency.p95), num(r.latency.p99),
                  num(isolation_p99)});
}

}  // namespace memfss::rt
