#include "rt/ec.hpp"

#include <algorithm>
#include <vector>

#include "hash/hashes.hpp"

namespace memfss::rt::ec {

namespace {

constexpr char kSep = '\x01';
constexpr std::size_t kManifestBytes = 24;
constexpr std::uint8_t kVersion = 1;

std::uint64_t payload_fnv(std::span<const std::uint8_t> bytes) {
  return hash::fnv1a(std::string_view(
      reinterpret_cast<const char*>(bytes.data()), bytes.size()));
}

void put_le64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t get_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

/// Best-effort sweep of shard siblings [from, to) -- rollback and
/// stale-stripe cleanup. Errors ignored: the keys may never have been
/// written.
void sweep_shards(ShardedStore& store, std::string_view token,
                  std::string_view key, std::size_t from, std::size_t to) {
  for (std::size_t i = from; i < to; ++i)
    (void)store.del(token, shard_key(key, i));
}

}  // namespace

std::string shard_key(std::string_view key, std::size_t idx) {
  std::string k(key);
  k += kSep;
  k += "rs";
  k += std::to_string(idx);
  return k;
}

std::string manifest_key(std::string_view key) {
  std::string k(key);
  k += kSep;
  k += "rs*";
  return k;
}

kvstore::Blob encode_manifest(const Manifest& mf) {
  std::vector<std::uint8_t> b(kManifestBytes, 0);
  b[0] = 'M';
  b[1] = 'F';
  b[2] = 'R';
  b[3] = 'S';
  b[4] = kVersion;
  b[5] = static_cast<std::uint8_t>(mf.k);
  b[6] = static_cast<std::uint8_t>(mf.m);
  put_le64(&b[8], mf.len);
  put_le64(&b[16], mf.checksum);
  return kvstore::Blob::materialized(std::move(b));
}

std::optional<Manifest> parse_manifest(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kManifestBytes) return std::nullopt;
  if (bytes[0] != 'M' || bytes[1] != 'F' || bytes[2] != 'R' ||
      bytes[3] != 'S' || bytes[4] != kVersion)
    return std::nullopt;
  Manifest mf;
  mf.k = bytes[5];
  mf.m = bytes[6];
  if (mf.k < 1 || mf.k + mf.m > 255) return std::nullopt;
  mf.len = get_le64(&bytes[8]);
  mf.checksum = get_le64(&bytes[16]);
  return mf;
}

Status put(ShardedStore& store, std::string_view token, std::string_view key,
           const kvstore::Blob& value, const erasure::ReedSolomon& rs,
           std::uint64_t* seq, std::uint32_t tenant) {
  const auto bytes = value.bytes();
  const std::size_t total = rs.total_shards();
  const std::size_t ss = rs.shard_size(bytes.size());

  // Remember how wide any stripe already under this key is, so stale
  // siblings beyond the new width get swept after commit.
  std::size_t old_total = 0;
  if (auto old = store.get(token, manifest_key(key)); old.ok()) {
    if (auto mf = parse_manifest(old.value().bytes())) old_total = mf->k + mf->m;
  }

  if (!bytes.empty()) {
    // Code the whole stripe in one pass into a contiguous arena, then
    // hand each shard slice to its own sibling key.
    std::vector<std::uint8_t> arena(total * ss);
    std::vector<std::uint8_t*> ptrs(total);
    for (std::size_t i = 0; i < total; ++i) ptrs[i] = arena.data() + i * ss;
    if (auto st = rs.encode_into(bytes, ptrs.data(), ss); !st.ok()) return st;
    for (std::size_t i = 0; i < total; ++i) {
      std::vector<std::uint8_t> shard(ptrs[i], ptrs[i] + ss);
      auto st = store.put(token, shard_key(key, i),
                          kvstore::Blob::materialized(std::move(shard)),
                          nullptr, tenant);
      if (!st.ok()) {
        // Never leave a half-written stripe readable: roll this
        // attempt's siblings back before reporting the failure.
        sweep_shards(store, token, key, 0, i + 1);
        return st;
      }
    }
  }

  const Manifest mf{rs.data_shards(), rs.parity_shards(), bytes.size(),
                    payload_fnv(bytes)};
  if (auto st = store.put(token, manifest_key(key), encode_manifest(mf), seq,
                          tenant);
      !st.ok()) {
    sweep_shards(store, token, key, 0, bytes.empty() ? 0 : total);
    return st;
  }

  // Committed: drop any plain value this stripe replaces, and any
  // siblings of a previous, wider stripe.
  (void)store.del(token, key);
  const std::size_t written = bytes.empty() ? 0 : total;
  if (old_total > written) sweep_shards(store, token, key, written, old_total);
  return {};
}

Result<kvstore::Blob> get(ShardedStore& store, std::string_view token,
                          std::string_view key, std::uint64_t* seq,
                          bool* reconstructed) {
  if (reconstructed) *reconstructed = false;
  // A get racing a put can observe a torn stripe (manifest of one
  // generation, shards of another); the manifest checksum catches that
  // and a bounded retry re-reads the settled state.
  Status last{Errc::corruption, "erasure stripe unreadable"};
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto mres = store.get(token, manifest_key(key), seq);
    if (mres.code() == Errc::not_found)
      return store.get(token, key, seq);  // pre-policy plain value
    if (!mres.ok()) return mres.error();
    const auto mf = parse_manifest(mres.value().bytes());
    if (!mf) {
      last = {Errc::corruption, "bad erasure manifest"};
      continue;
    }
    if (mf->len == 0) return kvstore::Blob::materialized({});

    const std::size_t total = mf->k + mf->m;
    const std::size_t ss = (mf->len + mf->k - 1) / mf->k;
    std::vector<std::vector<std::uint8_t>> shards(total);
    std::size_t data_present = 0;
    auto fetch = [&](std::size_t i) -> Errc {
      auto r = store.get(token, shard_key(key, i));
      if (r.code() == Errc::permission) return Errc::permission;
      if (r.ok()) {
        const auto b = r.value().bytes();
        // A wrong-size sibling is a torn write: treat it as missing so
        // it cannot poison the decode.
        if (b.size() == ss) shards[i].assign(b.begin(), b.end());
      }
      return Errc::ok;
    };
    for (std::size_t i = 0; i < mf->k; ++i) {
      if (fetch(i) == Errc::permission)
        return Error{Errc::permission, "bad token"};
      if (!shards[i].empty()) ++data_present;
    }

    std::vector<std::uint8_t> payload;
    if (data_present == mf->k) {
      // Fast path: every data sibling survived; concatenate and trim.
      payload.reserve(mf->len);
      for (std::size_t i = 0; i < mf->k && payload.size() < mf->len; ++i) {
        const std::size_t n =
            std::min(ss, static_cast<std::size_t>(mf->len) - payload.size());
        payload.insert(payload.end(), shards[i].begin(),
                       shards[i].begin() + static_cast<std::ptrdiff_t>(n));
      }
    } else {
      // Slow path: pull in parity and reconstruct from any k survivors.
      for (std::size_t i = mf->k; i < total; ++i)
        if (fetch(i) == Errc::permission)
          return Error{Errc::permission, "bad token"};
      const erasure::ReedSolomon coder(mf->k, mf->m);
      auto dec = coder.decode(shards, mf->len);
      if (!dec.ok()) {
        last = dec.error();
        continue;
      }
      payload = std::move(dec).value();
      if (reconstructed) *reconstructed = true;
    }

    if (payload_fnv(payload) == mf->checksum)
      return kvstore::Blob::materialized(std::move(payload));
    last = {Errc::corruption, "stripe checksum mismatch"};
  }
  return last.error();
}

Status del(ShardedStore& store, std::string_view token, std::string_view key,
           std::uint64_t* seq) {
  std::size_t total = 0;
  auto mres = store.get(token, manifest_key(key));
  if (mres.code() == Errc::permission) return {Errc::permission, "bad token"};
  if (mres.ok()) {
    if (auto mf = parse_manifest(mres.value().bytes())) total = mf->k + mf->m;
  }
  bool found = false;
  if (mres.ok()) {
    // Manifest goes first so concurrent readers fall back cleanly
    // instead of observing a shrinking stripe.
    found = store.del(token, manifest_key(key), seq).ok();
    sweep_shards(store, token, key, 0, total);
  }
  const auto plain = store.del(token, key, found ? nullptr : seq);
  if (plain.code() == Errc::permission) return plain;
  found = found || plain.ok();
  return found ? Status{} : Status{Errc::not_found, "no such key"};
}

Result<bool> exists(const ShardedStore& store, std::string_view token,
                    std::string_view key) {
  auto mex = store.exists(token, manifest_key(key));
  if (!mex.ok()) return mex;
  if (mex.value()) return true;
  return store.exists(token, key);
}

}  // namespace memfss::rt::ec
