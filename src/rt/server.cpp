#include "rt/server.hpp"

#include <memory>
#include <thread>
#include <utility>

namespace memfss::rt {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

RuntimeServer::RuntimeServer(ShardedStore& store, Options opt)
    : store_(store),
      opt_(opt),
      pool_(ThreadPool::Options{opt.threads, opt.queue_capacity}) {}

RuntimeServer::~RuntimeServer() { shutdown(); }

OpResult RuntimeServer::execute(const std::string& token, Op& op) {
  OpResult r;
  switch (op.type) {
    case Op::Type::put:
      r.code = store_.put(token, op.key, std::move(op.value), &r.seq).code();
      break;
    case Op::Type::get: {
      auto got = store_.get(token, op.key, &r.seq);
      r.code = got.code();
      if (got.ok()) r.value = std::move(got).value();
      break;
    }
    case Op::Type::del:
      r.code = store_.del(token, op.key, &r.seq).code();
      break;
    case Op::Type::exists: {
      auto e = store_.exists(token, op.key);
      r.code = e.code();
      if (e.ok()) r.found = e.value();
      break;
    }
    case Op::Type::auth:
      r.code = store_.check_token(token).code();
      break;
  }
  return r;
}

std::future<OpResult> RuntimeServer::submit(const std::string& token, Op op) {
  struct Work {
    std::promise<OpResult> done;
    std::string token;
    Op op;
    Clock::time_point start;
  };
  auto w = std::make_shared<Work>();
  w->token = token;
  w->op = std::move(op);
  w->start = Clock::now();
  auto fut = w->done.get_future();

  // auth carries no key; route it like an empty key so it still flows
  // through a real worker queue (and shows up in queue metrics).
  const std::size_t shard = store_.shard_of(w->op.key);
  const std::size_t worker = shard % pool_.size();

  const bool accepted = pool_.try_post(worker, [this, w] {
    if (opt_.service_time.count() > 0)
      std::this_thread::sleep_for(opt_.service_time);
    OpResult r = execute(w->token, w->op);
    r.latency_s = seconds_since(w->start);
    metrics_.count(r.code == Errc::ok
                       ? std::string("rt.ops.") + std::string(op_type_name(w->op.type))
                       : std::string("rt.ops.failed"));
    metrics_.observe("rt.op.latency_s", r.latency_s);
    w->done.set_value(std::move(r));
  });
  if (!accepted) {
    OpResult r;
    r.code = Errc::rejected;
    r.latency_s = seconds_since(w->start);
    metrics_.count("rt.ops.rejected");
    w->done.set_value(std::move(r));
  } else {
    metrics_.gauge_set("rt.queue.depth",
                       static_cast<double>(pool_.queue_depth(worker)));
  }
  return fut;
}

std::vector<OpResult> RuntimeServer::run_batch(const std::string& token,
                                               std::vector<Op> ops) {
  std::vector<std::future<OpResult>> futs;
  futs.reserve(ops.size());
  for (auto& op : ops) futs.push_back(submit(token, std::move(op)));
  std::vector<OpResult> out;
  out.reserve(futs.size());
  for (auto& f : futs) out.push_back(f.get());
  return out;
}

}  // namespace memfss::rt
