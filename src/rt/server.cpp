#include "rt/server.hpp"

#include <algorithm>

#include "rt/ec.hpp"
#include <cmath>
#include <memory>
#include <thread>
#include <utility>

namespace memfss::rt {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

RuntimeServer::RuntimeServer(ShardedStore& store, Options opt)
    : store_(store),
      opt_(opt),
      owned_tenants_(opt.tenants ? nullptr : std::make_unique<TenantRegistry>()),
      tenants_(opt.tenants ? opt.tenants : owned_tenants_.get()),
      epoch_(Clock::now()),
      pool_(ThreadPool::Options{opt.threads, opt.queue_capacity}) {}

RuntimeServer::~RuntimeServer() { shutdown(); }

OpResult RuntimeServer::execute(const std::string& token, Op& op) {
  OpResult r;
  std::uint64_t seq = 0;
  // Tenants with an RS(k, m) policy store through the erasure-coded
  // path (DESIGN.md §14): puts split into k+m sibling shards, gets
  // reassemble (reconstructing evicted/lost shards), del/exists cover
  // the whole stripe. Ghost blobs carry no bytes to code, so they pass
  // through plainly even for EC tenants.
  const erasure::ReedSolomon* rs = tenants_->rs_coder(op.tenant);
  switch (op.type) {
    case Op::Type::put:
      if (rs != nullptr && !op.value.is_ghost()) {
        r.code =
            ec::put(store_, token, op.key, op.value, *rs, &seq, op.tenant)
                .code();
        if (r.code == Errc::ok) metrics_.count("rt.ec.puts");
      } else {
        r.code = store_.put(token, op.key, std::move(op.value), &seq,
                            op.tenant).code();
      }
      r.seq = seq;
      break;
    case Op::Type::get: {
      if (rs != nullptr) {
        bool reconstructed = false;
        auto got = ec::get(store_, token, op.key, &seq, &reconstructed);
        r.code = got.code();
        if (got.ok()) r.value = std::move(got).value();
        if (reconstructed) metrics_.count("rt.ec.reconstructed_gets");
      } else {
        auto got = store_.get(token, op.key, &seq);
        r.code = got.code();
        if (got.ok()) r.value = std::move(got).value();
      }
      r.seq = seq;
      break;
    }
    case Op::Type::del:
      r.code = rs != nullptr
                   ? ec::del(store_, token, op.key, &seq).code()
                   : store_.del(token, op.key, &seq).code();
      r.seq = seq;
      break;
    case Op::Type::exists: {
      auto e = rs != nullptr ? ec::exists(store_, token, op.key)
                             : store_.exists(token, op.key);
      r.code = e.code();
      if (e.ok()) r.found = e.value();
      break;
    }
    case Op::Type::auth:
      r.code = store_.check_token(token).code();
      break;
  }
  return r;
}

std::future<OpResult> RuntimeServer::submit(const std::string& token, Op op) {
  auto p = std::make_shared<std::promise<OpResult>>();
  auto fut = p->get_future();
  submit_async(token, std::move(op),
               [p](OpResult r) { p->set_value(std::move(r)); });
  return fut;
}

void RuntimeServer::submit_async(const std::string& token, Op op,
                                 Completion done) {
  struct Work {
    Completion done;
    std::string token;
    Op op;
    Clock::time_point start;
    bool degraded = false;  ///< admitted past degrade_at: cheap path
  };
  auto w = std::make_shared<Work>();
  w->done = std::move(done);
  w->token = token;
  w->op = std::move(op);
  w->start = Clock::now();

  const std::uint32_t tid = w->op.tenant;
  auto complete_now = [&](Errc code, double retry_after_s,
                          std::string_view metric) {
    OpResult r;
    r.code = code;
    r.retry_after_s = retry_after_s;
    r.latency_s = seconds_since(w->start);
    metrics_.count(std::string("rt.ops.") + std::string(metric));
    if (tenants_->valid(tid))
      metrics_.count_tenant(tenants_->name(tid), metric);
    w->done(std::move(r));
  };

  if (!tenants_->valid(tid)) {
    complete_now(Errc::invalid_argument, 0.0, "invalid_tenant");
    return;
  }

  // auth carries no key; route it like an empty key so it still flows
  // through a real worker queue (and shows up in queue metrics).
  const std::size_t shard = store_.shard_of(w->op.key);
  const std::size_t worker = shard % pool_.size();

  // Gate 1: the tenant's own rate limits. Over-rate bursters are shed
  // here regardless of load, so they can never displace other tenants.
  const Bytes payload =
      w->op.type == Op::Type::put ? w->op.value.size() : 0;
  const auto adm = tenants_->admit(tid, payload, now_s());
  if (adm.code != Errc::ok) {
    complete_now(Errc::overloaded, adm.retry_after_s, "overloaded");
    return;
  }

  // Gate 2: pressure. Occupancy of the owning worker drives a shedding
  // ladder: past shed_at the minimum admitted priority rises linearly
  // from 1 (best-effort shed first) to kTopPriority (everyone but the
  // top class shed as the queue approaches full); writes ride a biased
  // occupancy so they shed a notch before reads. kTopPriority tenants
  // are never pressure-shed -- their lane bound (gate 3) is the only
  // thing that can turn them away.
  const double occupancy = pool_.occupancy(worker);
  const std::uint32_t prio = tenants_->priority(tid);
  if (occupancy >= opt_.shed_at && prio < kTopPriority) {
    const double biased = std::min(
        1.0, occupancy + (op_is_write(w->op.type) ? opt_.write_shed_bias
                                                  : 0.0));
    const double level = (biased - opt_.shed_at) / (1.0 - opt_.shed_at);
    const auto required = static_cast<std::uint32_t>(
        std::ceil(level * kTopPriority));
    if (prio < required) {
      // Hint scales with how deep into overload the worker is: a
      // lightly loaded queue suggests a short backoff, a nearly full
      // one up to 10x the base.
      complete_now(Errc::overloaded,
                   opt_.retry_after_base_s * (1.0 + 9.0 * level),
                   "overloaded");
      return;
    }
  }
  w->degraded = occupancy >= opt_.degrade_at;

  // Gate 3: the tenant's lane in the owning worker. Each tenant gets a
  // weight-proportional share of the worker's aggregate capacity, so a
  // flooding tenant fills only its own lane.
  const std::uint64_t total_weight = std::max<std::uint64_t>(
      tenants_->total_weight(), 1);
  const std::size_t lane_cap = std::max<std::size_t>(
      1, static_cast<std::size_t>(pool_.capacity() *
                                  tenants_->weight(tid) / total_weight));
  const bool accepted = pool_.try_post(
      worker, tid, tenants_->weight(tid), lane_cap, [this, w] {
        if (opt_.service_time.count() > 0 && !w->degraded)
          std::this_thread::sleep_for(opt_.service_time);
        else if (opt_.service_time.count() > 0)
          metrics_.count("rt.ops.degraded");
        // execute() moves the put payload into the store; size it first.
        const Bytes put_bytes =
            w->op.type == Op::Type::put ? w->op.value.size() : 0;
        OpResult r = execute(w->token, w->op);
        r.latency_s = seconds_since(w->start);
        const std::string_view verb = op_type_name(w->op.type);
        metrics_.count(r.code == Errc::ok
                           ? std::string("rt.ops.") + std::string(verb)
                           : std::string("rt.ops.failed"));
        metrics_.observe("rt.op.latency_s", r.latency_s);
        if (tenants_->valid(w->op.tenant)) {
          const std::string& tname = tenants_->name(w->op.tenant);
          metrics_.count_tenant(tname, "ops");
          if (w->op.type == Op::Type::put)
            metrics_.count_tenant(tname, "bytes", put_bytes);
        }
        w->done(std::move(r));
      });
  if (!accepted) {
    complete_now(Errc::rejected, 0.0, "rejected");
  } else {
    metrics_.gauge_set("rt.queue.depth",
                       static_cast<double>(pool_.queue_depth(worker)));
  }
}

std::vector<OpResult> RuntimeServer::run_batch(const std::string& token,
                                               std::vector<Op> ops) {
  std::vector<std::future<OpResult>> futs;
  futs.reserve(ops.size());
  for (auto& op : ops) futs.push_back(submit(token, std::move(op)));
  std::vector<OpResult> out;
  out.reserve(futs.size());
  for (auto& f : futs) out.push_back(f.get());
  return out;
}

}  // namespace memfss::rt
