// MetricsSink: a mutex-guarded front for obs::MetricsRegistry so the
// concurrent runtime can feed the same instrument types the simulator
// uses. The registry itself is single-threaded by design (hot paths in
// the sim cache bare references); the runtime instead funnels every
// update through one short critical section -- updates are an array
// increment or two, so the lock hold time is tens of nanoseconds and
// snapshot() still sees a consistent registry.
#pragma once

#include <mutex>
#include <string_view>

#include "obs/metrics.hpp"

namespace memfss::rt {

class MetricsSink {
 public:
  void count(std::string_view name, std::uint64_t delta = 1) {
    std::lock_guard lk(mu_);
    reg_.counter(name).inc(delta);
  }

  /// Per-tenant counter: "rt.tenant.<tenant>.<metric>". The QoS layer
  /// routes every tenant-attributed count (admitted ops, sheds,
  /// rejections, payload bytes) through here so dashboards can slice
  /// the runtime by tenant with one name prefix.
  void count_tenant(std::string_view tenant, std::string_view metric,
                    std::uint64_t delta = 1) {
    std::string name;
    name.reserve(10 + tenant.size() + 1 + metric.size());
    name += "rt.tenant.";
    name += tenant;
    name += '.';
    name += metric;
    count(name, delta);
  }

  void observe(std::string_view name, double value) {
    std::lock_guard lk(mu_);
    reg_.histogram(name).add(value);
  }

  void gauge_set(std::string_view name, double value) {
    std::lock_guard lk(mu_);
    reg_.gauge(name).set(value);
  }

  obs::MetricsSnapshot snapshot() const {
    std::lock_guard lk(mu_);
    return reg_.snapshot();
  }

  obs::HistogramSummary histogram_summary(std::string_view name) const {
    std::lock_guard lk(mu_);
    return reg_.histogram_summary(name);
  }

  std::uint64_t counter_value(std::string_view name) const {
    std::lock_guard lk(mu_);
    return reg_.counter_value(name);
  }

 private:
  mutable std::mutex mu_;
  obs::MetricsRegistry reg_;
};

}  // namespace memfss::rt
