#include "rt/thread_pool.hpp"

namespace memfss::rt {

ThreadPool::ThreadPool(Options opt)
    : cap_(opt.queue_capacity ? opt.queue_capacity : 1) {
  const std::size_t n = opt.threads ? opt.threads : 1;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.push_back(std::make_unique<Worker>());
  // Threads start only after the vector is fully built so run() never
  // sees a partially constructed pool.
  for (auto& wp : workers_) wp->th = std::thread([this, w = wp.get()] { run(*w); });
}

ThreadPool::~ThreadPool() { stop(); }

bool ThreadPool::try_post(std::size_t worker, Job job) {
  auto& w = *workers_[worker % workers_.size()];
  {
    std::lock_guard lk(w.mu);
    if (stopping_.load(std::memory_order_relaxed) || w.q.size() >= cap_)
      return false;
    w.q.push_back(std::move(job));
  }
  w.cv.notify_one();
  return true;
}

std::size_t ThreadPool::queue_depth(std::size_t worker) const {
  auto& w = *workers_[worker % workers_.size()];
  std::lock_guard lk(w.mu);
  return w.q.size();
}

void ThreadPool::run(Worker& w) {
  while (true) {
    Job job;
    {
      std::unique_lock lk(w.mu);
      w.cv.wait(lk, [&] {
        return !w.q.empty() || stopping_.load(std::memory_order_relaxed);
      });
      if (w.q.empty()) return;  // stopping and drained
      job = std::move(w.q.front());
      w.q.pop_front();
    }
    job();
  }
}

void ThreadPool::stop() {
  // Set the flag under every worker's mutex so a worker between its
  // predicate check and its wait cannot miss the final notify.
  stopping_.store(true, std::memory_order_relaxed);
  for (auto& wp : workers_) {
    {
      std::lock_guard lk(wp->mu);
    }
    wp->cv.notify_all();
  }
  for (auto& wp : workers_)
    if (wp->th.joinable()) wp->th.join();
}

}  // namespace memfss::rt
