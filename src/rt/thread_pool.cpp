#include "rt/thread_pool.hpp"

#include <algorithm>

namespace memfss::rt {

ThreadPool::ThreadPool(Options opt)
    : cap_(opt.queue_capacity ? opt.queue_capacity : 1) {
  const std::size_t n = opt.threads ? opt.threads : 1;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.push_back(std::make_unique<Worker>());
  // Threads start only after the vector is fully built so run() never
  // sees a partially constructed pool.
  for (auto& wp : workers_) wp->th = std::thread([this, w = wp.get()] { run(*w); });
}

ThreadPool::~ThreadPool() { stop(); }

bool ThreadPool::try_post(std::size_t worker, std::uint32_t lane,
                          std::uint32_t weight, std::size_t lane_cap,
                          Job job) {
  auto& w = *workers_[worker % workers_.size()];
  {
    std::lock_guard lk(w.mu);
    if (stopping_.load(std::memory_order_relaxed) || w.total >= cap_)
      return false;
    if (lane >= w.lanes.size()) w.lanes.resize(lane + 1);
    if (!w.lanes[lane]) w.lanes[lane] = std::make_unique<Lane>();
    Lane& l = *w.lanes[lane];
    l.weight = std::max<std::uint32_t>(weight, 1);
    if (l.q.size() >= std::max<std::size_t>(lane_cap, 1)) return false;
    l.q.push_back(std::move(job));
    ++w.total;
  }
  w.cv.notify_one();
  return true;
}

std::size_t ThreadPool::queue_depth(std::size_t worker) const {
  auto& w = *workers_[worker % workers_.size()];
  std::lock_guard lk(w.mu);
  return w.total;
}

std::size_t ThreadPool::queue_depth(std::size_t worker,
                                    std::uint32_t lane) const {
  auto& w = *workers_[worker % workers_.size()];
  std::lock_guard lk(w.mu);
  if (lane >= w.lanes.size() || !w.lanes[lane]) return 0;
  return w.lanes[lane]->q.size();
}

double ThreadPool::occupancy(std::size_t worker) const {
  return static_cast<double>(queue_depth(worker)) /
         static_cast<double>(cap_);
}

ThreadPool::Job ThreadPool::take_locked(Worker& w) {
  // Deficit round robin over lanes: a non-empty lane is granted
  // `weight` job credits when the cursor arrives and is served until
  // the credits or the lane run out; an emptied lane forfeits leftover
  // credit (an idle tenant must not bank shares). total > 0 guarantees
  // the scan terminates.
  while (true) {
    if (w.cursor >= w.lanes.size()) w.cursor = 0;
    Lane* l = w.lanes[w.cursor].get();
    if (!l || l->q.empty()) {
      if (l) l->deficit = 0;
      ++w.cursor;
      continue;
    }
    if (l->deficit == 0) l->deficit = l->weight;
    Job job = std::move(l->q.front());
    l->q.pop_front();
    --w.total;
    if (--l->deficit == 0 || l->q.empty()) {
      l->deficit = 0;
      ++w.cursor;
    }
    return job;
  }
}

void ThreadPool::run(Worker& w) {
  while (true) {
    Job job;
    {
      std::unique_lock lk(w.mu);
      w.cv.wait(lk, [&] {
        return w.total > 0 || stopping_.load(std::memory_order_relaxed);
      });
      if (w.total == 0) return;  // stopping and drained
      job = take_locked(w);
    }
    job();
  }
}

void ThreadPool::stop() {
  // Set the flag under every worker's mutex so a worker between its
  // predicate check and its wait cannot miss the final notify.
  stopping_.store(true, std::memory_order_relaxed);
  for (auto& wp : workers_) {
    {
      std::lock_guard lk(wp->mu);
    }
    wp->cv.notify_all();
  }
  for (auto& wp : workers_)
    if (wp->th.joinable()) wp->th.join();
}

}  // namespace memfss::rt
