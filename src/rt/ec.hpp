// Erasure-coded storage over ShardedStore (DESIGN.md §14): the rt
// runtime's per-tenant Reed-Solomon redundancy mode.
//
// A logical key K with policy RS(k, m) is stored as k+m+1 *sibling*
// keys in the sharded store:
//
//   K '\x01' "rs*"          manifest: {k, m, original_len, payload fnv}
//   K '\x01' "rs" <i>       shard i, i in [0, k+m) -- k data, m parity
//
// '\x01' cannot appear in client keys arriving over the wire protocol's
// printable key paths, and even if it does the sibling namespace only
// shadows keys that themselves end in the rs suffix. Each sibling is an
// ordinary store key, so it lands on its own store shard (FNV digest),
// is charged to the owning tenant's memory quota like any other key,
// and is individually evictable -- which is exactly what makes the
// decode path interesting: a get reassembles the payload from the k
// data siblings and, when some were evicted or their shard closed,
// reconstructs them from any k surviving siblings.
//
// Concurrency: one EC op issues several store ops, so composite ops are
// not atomic. The manifest carries the payload's FNV-1a checksum and
// get() verifies it after reassembly (retrying a torn read a couple of
// times before reporting corruption); last-writer-wins applies at the
// manifest. Concurrent writers to the *same* logical key can strand
// stale siblings -- same-key write races are the caller's problem, as
// they already are for plain puts.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "common/result.hpp"
#include "erasure/reed_solomon.hpp"
#include "kvstore/blob.hpp"
#include "rt/sharded_store.hpp"

namespace memfss::rt::ec {

/// Sibling-key names for shard `idx` / the manifest of logical `key`.
std::string shard_key(std::string_view key, std::size_t idx);
std::string manifest_key(std::string_view key);

/// Manifest payload (24 bytes on the wire: magic "MFRS", version, k, m,
/// original length, payload FNV-1a).
struct Manifest {
  std::size_t k = 0;
  std::size_t m = 0;
  std::uint64_t len = 0;       ///< original payload length
  std::uint64_t checksum = 0;  ///< fnv1a over the payload bytes
};

kvstore::Blob encode_manifest(const Manifest& mf);
std::optional<Manifest> parse_manifest(std::span<const std::uint8_t> bytes);

/// Encode `value` (materialized) into k+m shard siblings + manifest.
/// On any sibling-put failure (tenant quota, aggregate cap, closed
/// shard) the already-written siblings of this attempt are deleted and
/// the error returned, so a failed put never leaves a readable
/// half-stripe behind. A previously plain-stored value under `key` is
/// deleted once the stripe commits. `seq` receives the manifest put's
/// serialization index.
Status put(ShardedStore& store, std::string_view token, std::string_view key,
           const kvstore::Blob& value, const erasure::ReedSolomon& rs,
           std::uint64_t* seq = nullptr, std::uint32_t tenant = 0);

/// Read back the logical value: fast path concatenates the k data
/// siblings; missing data siblings trigger reconstruction from any k
/// survivors. Falls back to a plain get when no manifest exists (keys
/// written before the tenant's policy was enabled). `reconstructed`
/// (optional) reports whether the slow path ran.
Result<kvstore::Blob> get(ShardedStore& store, std::string_view token,
                          std::string_view key, std::uint64_t* seq = nullptr,
                          bool* reconstructed = nullptr);

/// Delete the manifest, every shard sibling, and any plain-stored value
/// under `key`. not_found only if none of them existed.
Status del(ShardedStore& store, std::string_view token, std::string_view key,
           std::uint64_t* seq = nullptr);

/// Whether `key` exists either as a stripe (manifest present) or plain.
Result<bool> exists(const ShardedStore& store, std::string_view token,
                    std::string_view key);

}  // namespace memfss::rt::ec
