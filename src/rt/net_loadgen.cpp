#include "rt/net_loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <unordered_map>

#include "common/table.hpp"
#include "hash/hashes.hpp"
#include "netio/client.hpp"
#include "rt/sharded_store.hpp"
#include "rt/tcp_server.hpp"

namespace memfss::rt {

namespace {

/// Request ids used for the one-time AUTH on each connection live far
/// above the per-op id space (op ids are stream offsets < 2^32).
constexpr std::uint64_t kAuthIdBase = 0xA001000000000000ull;

struct ThreadTally {
  std::uint64_t puts = 0, gets = 0, dels = 0, not_found = 0, rejected = 0,
                overloaded = 0, retry_after_hints = 0, errors = 0,
                responses = 0, lost = 0, duplicated = 0, transport_errors = 0;
  std::uint64_t digest = hash::fnv1a_seed();
};

/// One answered op, staged until the whole batch is in so the digest
/// folds in submission order regardless of response interleaving.
struct SlotResult {
  bool answered = false;
  Errc code = Errc::ok;
  std::uint64_t checksum = 0;
  std::uint32_t retry_after_us = 0;
};

}  // namespace

NetLoadgenResult run_net_loadgen(const NetLoadgenOptions& opt) {
  NetLoadgenResult res;
  res.opt = opt;
  const LoadgenOptions& base = opt.base;

  ShardedStore store({base.shards, base.capacity, base.auth_token});
  RuntimeServer server(
      store, {base.server_threads, base.queue_capacity,
              std::chrono::microseconds(base.service_time_us)});
  TcpServer::Options topt;
  topt.reactors = std::max<std::size_t>(1, opt.reactors);
  TcpServer tcp(server, topt);

  std::vector<std::vector<GenOp>> streams;
  streams.reserve(base.client_threads);
  for (std::size_t t = 0; t < base.client_threads; ++t)
    streams.push_back(generate_ops(base, t));

  std::vector<ThreadTally> tallies(base.client_threads);
  const std::size_t conns_per = std::max<std::size_t>(1, opt.connections_per_thread);

  auto client = [&](std::size_t t) {
    auto& tally = tallies[t];
    const auto& stream = streams[t];

    std::vector<netio::NetClient> conns(conns_per);
    for (std::size_t c = 0; c < conns_per; ++c) {
      auto& conn = conns[c];
      if (!conn.connect(tcp.port()).ok() ||
          !conn.set_recv_timeout(30.0).ok() ||
          !conn.send(netio::NetClient::make_auth(kAuthIdBase + c,
                                                 base.auth_token)).ok()) {
        ++tally.transport_errors;
        tally.lost += stream.size();
        return;
      }
      auto auth = conn.recv();
      if (!auth.ok() || auth.value().status != 0) {
        ++tally.transport_errors;
        tally.lost += stream.size();
        return;
      }
    }

    std::size_t i = 0;
    while (i < stream.size()) {
      const std::size_t n = std::min(base.batch, stream.size() - i);
      // Encode the whole batch round-robin across connections, then
      // write each connection's share in one send (pipelining).
      std::vector<std::vector<std::uint8_t>> wire(conns_per);
      // Per connection: request id -> slot index in this batch.
      std::vector<std::unordered_map<std::uint64_t, std::size_t>> open(conns_per);
      std::vector<SlotResult> slots(n);
      for (std::size_t j = 0; j < n; ++j) {
        const GenOp& g = stream[i + j];
        const std::size_t c = j % conns_per;
        const std::uint64_t rid = static_cast<std::uint64_t>(i + j);
        netio::Frame f;
        switch (g.type) {
          case Op::Type::put: {
            auto blob = stream_value(base.value_size, g.key_index, i + j);
            const auto span = blob.bytes();
            f = netio::NetClient::make_put(
                rid, 0, loadgen_key(g.key_index),
                std::vector<std::uint8_t>(span.begin(), span.end()));
            break;
          }
          case Op::Type::del:
            f = netio::NetClient::make_del(rid, 0, loadgen_key(g.key_index));
            break;
          default:
            f = netio::NetClient::make_get(rid, 0, loadgen_key(g.key_index));
            break;
        }
        netio::encode_frame(f, wire[c]);
        open[c].emplace(rid, j);
      }
      bool dead = false;
      for (std::size_t c = 0; c < conns_per && !dead; ++c) {
        if (wire[c].empty()) continue;
        if (!conns[c].send_raw(wire[c]).ok()) {
          ++tally.transport_errors;
          dead = true;
        }
      }
      // Collect every outstanding response; each id may be answered
      // exactly once (misses become `lost`, repeats `duplicated`).
      for (std::size_t c = 0; c < conns_per && !dead; ++c) {
        while (!open[c].empty()) {
          auto got = conns[c].recv();
          if (!got.ok()) {
            ++tally.transport_errors;
            dead = true;
            break;
          }
          const netio::Frame& rf = got.value();
          auto it = open[c].find(rf.request_id);
          if (it == open[c].end()) {
            ++tally.duplicated;
            continue;
          }
          SlotResult& s = slots[it->second];
          s.answered = true;
          s.code = static_cast<Errc>(rf.status);
          s.checksum = rf.checksum;
          s.retry_after_us = rf.retry_after_us;
          ++tally.responses;
          open[c].erase(it);
        }
      }
      for (const auto& m : open)
        tally.lost += m.size();
      for (std::size_t j = 0; j < n; ++j) {
        const GenOp& g = stream[i + j];
        const SlotResult& s = slots[j];
        if (!s.answered) continue;
        tally.digest = fold_result(tally.digest, g, s.code, s.checksum);
        switch (s.code) {
          case Errc::ok:
            if (g.type == Op::Type::put) ++tally.puts;
            if (g.type == Op::Type::del) ++tally.dels;
            if (g.type == Op::Type::get) ++tally.gets;
            break;
          case Errc::not_found: ++tally.not_found; break;
          case Errc::rejected: ++tally.rejected; break;
          case Errc::overloaded:
            ++tally.overloaded;
            if (s.retry_after_us > 0) ++tally.retry_after_hints;
            break;
          default: ++tally.errors; break;
        }
      }
      i += n;
      if (dead) {
        tally.lost += stream.size() - i;
        return;
      }
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(base.client_threads);
  for (std::size_t t = 0; t < base.client_threads; ++t)
    threads.emplace_back(client, t);
  for (auto& th : threads) th.join();
  res.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0).count();
  tcp.shutdown();

  std::vector<std::uint64_t> digests;
  digests.reserve(tallies.size());
  for (const auto& tally : tallies) {
    res.puts += tally.puts;
    res.gets += tally.gets;
    res.dels += tally.dels;
    res.not_found += tally.not_found;
    res.rejected += tally.rejected;
    res.overloaded += tally.overloaded;
    res.retry_after_hints += tally.retry_after_hints;
    res.errors += tally.errors;
    res.responses += tally.responses;
    res.lost += tally.lost;
    res.duplicated += tally.duplicated;
    res.transport_errors += tally.transport_errors;
    digests.push_back(tally.digest);
  }
  res.result_digest = combine_digests(digests);
  res.ops_per_sec = res.wall_s > 0.0
                        ? static_cast<double>(res.responses) / res.wall_s
                        : 0.0;
  res.latency = server.metrics().histogram_summary("rt.op.latency_s");
  res.bytes_in = server.metrics().counter_value("rt.net.bytes_in");
  res.bytes_out = server.metrics().counter_value("rt.net.bytes_out");
  return res;
}

std::string net_loadgen_csv_header() {
  return csv_row({"client_threads", "connections_per_thread", "reactors",
                  "server_threads", "shards", "ops_per_thread", "batch",
                  "value_size", "get_fraction", "del_fraction", "zipf_theta",
                  "service_time_us", "seed", "wall_s", "ops_per_sec", "puts",
                  "gets", "dels", "not_found", "rejected", "overloaded",
                  "retry_after_hints", "errors", "responses", "lost",
                  "duplicated", "transport_errors", "bytes_in", "bytes_out",
                  "lat_p50_s", "lat_p95_s", "lat_p99_s", "result_digest"});
}

std::string net_loadgen_csv_row(const NetLoadgenResult& r) {
  auto num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };
  const auto& o = r.opt.base;
  return csv_row({std::to_string(o.client_threads),
                  std::to_string(r.opt.connections_per_thread),
                  std::to_string(r.opt.reactors),
                  std::to_string(o.server_threads), std::to_string(o.shards),
                  std::to_string(o.ops_per_thread), std::to_string(o.batch),
                  std::to_string(o.value_size), num(o.get_fraction),
                  num(o.del_fraction), num(o.zipf_theta),
                  std::to_string(o.service_time_us), std::to_string(o.seed),
                  num(r.wall_s), num(r.ops_per_sec), std::to_string(r.puts),
                  std::to_string(r.gets), std::to_string(r.dels),
                  std::to_string(r.not_found), std::to_string(r.rejected),
                  std::to_string(r.overloaded),
                  std::to_string(r.retry_after_hints),
                  std::to_string(r.errors), std::to_string(r.responses),
                  std::to_string(r.lost), std::to_string(r.duplicated),
                  std::to_string(r.transport_errors),
                  std::to_string(r.bytes_in), std::to_string(r.bytes_out),
                  num(r.latency.p50), num(r.latency.p95), num(r.latency.p99),
                  std::to_string(r.result_digest)});
}

}  // namespace memfss::rt
