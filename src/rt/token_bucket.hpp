// TokenBucket: the admission-rate primitive behind per-tenant QoS
// (DESIGN.md §12). A bucket refills continuously at `rate` tokens per
// second up to `burst` tokens; an operation that needs n tokens is
// admitted iff the bucket holds at least n at that moment. rate <= 0
// means unlimited (every take succeeds, no state).
//
// Time is passed in by the caller (seconds on whatever monotonic clock
// it likes) rather than read from a clock here, so tests drive the
// bucket deterministically and the registry can stamp one clock read
// across several buckets. The bucket is NOT internally synchronized --
// rt::TenantRegistry serializes access under its per-tenant mutex.
#pragma once

#include <algorithm>

namespace memfss::rt {

class TokenBucket {
 public:
  TokenBucket() = default;
  /// rate <= 0 disables limiting. burst <= 0 defaults to max(rate, 1)
  /// (one second of headroom, never less than one whole op).
  TokenBucket(double rate, double burst)
      : rate_(rate),
        burst_(rate > 0.0 ? (burst > 0.0 ? burst : std::max(rate, 1.0))
                          : 0.0),
        tokens_(burst_) {}

  bool unlimited() const { return rate_ <= 0.0; }
  double rate() const { return rate_; }
  double burst() const { return burst_; }

  /// Tokens available at `now_s` (after refill), for introspection.
  double available(double now_s) const {
    if (unlimited()) return 0.0;
    return std::min(burst_, tokens_ + (now_s - last_s_) * rate_);
  }

  /// Admit an op costing `n` tokens at time `now_s`: refill, then take
  /// `n` if the bucket covers it. Returns false (and takes nothing) when
  /// it does not.
  bool try_take(double now_s, double n = 1.0) {
    if (unlimited()) return true;
    refill(now_s);
    if (tokens_ < n) return false;
    tokens_ -= n;
    return true;
  }

  /// Seconds from `now_s` until `n` tokens will have accumulated -- the
  /// retry-after hint handed to a shed client. 0 when already covered.
  double delay_until(double now_s, double n = 1.0) const {
    if (unlimited()) return 0.0;
    const double have = available(now_s);
    if (have >= n) return 0.0;
    return (std::min(n, burst_) - have) / rate_;
  }

 private:
  void refill(double now_s) {
    if (now_s > last_s_)
      tokens_ = std::min(burst_, tokens_ + (now_s - last_s_) * rate_);
    last_s_ = std::max(last_s_, now_s);
  }

  double rate_ = 0.0;    ///< tokens per second; <= 0 = unlimited
  double burst_ = 0.0;   ///< bucket capacity
  double tokens_ = 0.0;  ///< current fill (valid as of last_s_)
  double last_s_ = 0.0;  ///< last refill timestamp
};

}  // namespace memfss::rt
