#include "rt/sharded_store.hpp"

#include <utility>

#include "hash/hashes.hpp"
#include "rt/tenant_registry.hpp"

namespace memfss::rt {

ShardedStore::ShardedStore(Options opt)
    : capacity_(opt.capacity), tenants_(opt.tenants) {
  const std::size_t n = opt.shards ? opt.shards : 1;
  shards_.reserve(n);
  // Each shard's own Store is created with the *aggregate* cap so the
  // per-shard check never binds; admission is decided solely by the
  // atomic aggregate gate, which is strictly tighter.
  for (std::size_t i = 0; i < n; ++i)
    shards_.push_back(std::make_unique<Shard>(opt.capacity, opt.auth_token));
}

std::size_t ShardedStore::shard_of(std::string_view key) const {
  return static_cast<std::size_t>(hash::key_digest(key) % shards_.size());
}

Status ShardedStore::check_token(std::string_view token) const {
  // Tokens are immutable after construction; probe shard 0 without
  // touching any key. exists() on a never-stored key runs the store's
  // auth check first.
  auto& sh = *shards_[0];
  std::lock_guard lk(sh.mu);
  auto r = sh.store.exists(token, "");
  if (!r.ok() && r.code() == Errc::permission) return r.error();
  return {};
}

bool ShardedStore::try_reserve(Bytes n) {
  Bytes cur = used_.load(std::memory_order_relaxed);
  while (true) {
    if (cur + n > capacity_) return false;
    if (used_.compare_exchange_weak(cur, cur + n, std::memory_order_relaxed))
      return true;
  }
}

Status ShardedStore::put(std::string_view token, std::string_view key,
                         kvstore::Blob value, std::uint64_t* seq,
                         std::uint32_t tenant) {
  auto& sh = shard(key);
  std::lock_guard lk(sh.mu);
  if (seq) *seq = ++sh.seq;
  const Bytes incoming = value.size() + kvstore::Store::kPerKeyOverhead;
  const bool existed = sh.store.peek(key) != nullptr;
  Bytes outgoing = 0;
  if (existed)
    outgoing = sh.store.peek(key)->size() + kvstore::Store::kPerKeyOverhead;
  const Bytes grow = incoming > outgoing ? incoming - outgoing : 0;

  // Per-tenant quota gate first (charge-before-insert, like the
  // aggregate gate below): a same-owner overwrite charges only the
  // growth; a fresh key or cross-tenant overwrite charges the full
  // incoming size (the old owner's bytes are released after success).
  std::uint32_t old_owner = 0;
  bool same_owner = false;
  Bytes charged = 0;
  if (tenants_) {
    if (existed) {
      const auto it = sh.owner.find(std::string(key));
      old_owner = it == sh.owner.end() ? 0 : it->second;
    }
    same_owner = existed && old_owner == tenant;
    charged = same_owner ? grow : incoming;
    if (charged > 0 && !tenants_->try_charge_memory(tenant, charged))
      return {Errc::out_of_memory, "tenant memory quota exceeded"};
  }
  if (grow > 0 && !try_reserve(grow)) {
    if (charged > 0) tenants_->release_memory(tenant, charged);
    return {Errc::out_of_memory, "aggregate capacity exceeded"};
  }
  auto st = sh.store.put(token, key, std::move(value));
  if (!st.ok()) {
    if (grow > 0) release(grow);
    if (charged > 0) tenants_->release_memory(tenant, charged);
    return st;
  }
  // Overwrite by a smaller value: the shard shrank, return the slack
  // (aggregate before per-tenant, preserving sum-over-tenants >= used).
  if (incoming < outgoing) release(outgoing - incoming);
  if (tenants_) {
    if (same_owner) {
      if (incoming < outgoing)
        tenants_->release_memory(tenant, outgoing - incoming);
    } else if (existed) {
      tenants_->release_memory(old_owner, outgoing);
    }
    sh.owner[std::string(key)] = tenant;
  }
  return st;
}

Result<kvstore::Blob> ShardedStore::get(std::string_view token,
                                        std::string_view key,
                                        std::uint64_t* seq) {
  auto& sh = shard(key);
  std::lock_guard lk(sh.mu);
  if (seq) *seq = ++sh.seq;
  return sh.store.get(token, key);
}

Status ShardedStore::del(std::string_view token, std::string_view key,
                         std::uint64_t* seq) {
  auto& sh = shard(key);
  std::lock_guard lk(sh.mu);
  if (seq) *seq = ++sh.seq;
  Bytes held = 0;
  if (const auto* prev = sh.store.peek(key))
    held = prev->size() + kvstore::Store::kPerKeyOverhead;
  auto st = sh.store.del(token, key);
  if (st.ok()) {
    release(held);
    if (tenants_) {
      const auto it = sh.owner.find(std::string(key));
      if (it != sh.owner.end()) {
        tenants_->release_memory(it->second, held);
        sh.owner.erase(it);
      }
    }
  }
  return st;
}

Result<bool> ShardedStore::exists(std::string_view token,
                                  std::string_view key) const {
  auto& sh = *shards_[shard_of(key)];
  std::lock_guard lk(sh.mu);
  return sh.store.exists(token, key);
}

std::optional<kvstore::Blob> ShardedStore::evict(std::string_view key) {
  auto& sh = shard(key);
  std::lock_guard lk(sh.mu);
  ++sh.seq;
  auto b = sh.store.drain(key);
  if (b) {
    const Bytes held = b->size() + kvstore::Store::kPerKeyOverhead;
    release(held);
    if (tenants_) {
      const auto it = sh.owner.find(std::string(key));
      if (it != sh.owner.end()) {
        tenants_->release_memory(it->second, held);
        sh.owner.erase(it);
      }
    }
  }
  return b;
}

void ShardedStore::close_shard(std::size_t shard) {
  auto& sh = *shards_.at(shard);
  std::lock_guard lk(sh.mu);
  sh.store.close();
}

bool ShardedStore::shard_closed(std::size_t shard) const {
  auto& sh = *shards_.at(shard);
  std::lock_guard lk(sh.mu);
  return sh.store.closed();
}

Bytes ShardedStore::clear_shard(std::size_t shard) {
  auto& sh = *shards_.at(shard);
  std::lock_guard lk(sh.mu);
  ++sh.seq;
  // Capture per-owner tallies before the keys vanish; per-tenant
  // releases follow the aggregate release (sum >= used is preserved).
  std::vector<std::pair<std::uint32_t, Bytes>> owed;
  if (tenants_) {
    owed.reserve(sh.owner.size());
    for (const auto& [key, owner] : sh.owner)
      if (const auto* b = sh.store.peek(key))
        owed.emplace_back(owner, b->size() + kvstore::Store::kPerKeyOverhead);
    sh.owner.clear();
  }
  const Bytes freed = sh.store.clear();
  release(freed);
  for (const auto& [owner, bytes] : owed)
    tenants_->release_memory(owner, bytes);
  return freed;
}

Bytes ShardedStore::shard_used(std::size_t shard) const {
  auto& sh = *shards_.at(shard);
  std::lock_guard lk(sh.mu);
  return sh.store.used();
}

Bytes ShardedStore::shard_recomputed_used(std::size_t shard) const {
  auto& sh = *shards_.at(shard);
  std::lock_guard lk(sh.mu);
  Bytes sum = 0;
  for (const auto& key : sh.store.keys())
    sum += sh.store.peek(key)->size() + kvstore::Store::kPerKeyOverhead;
  return sum;
}

std::size_t ShardedStore::key_count() const {
  std::size_t n = 0;
  for (const auto& shp : shards_) {
    std::lock_guard lk(shp->mu);
    n += shp->store.key_count();
  }
  return n;
}

kvstore::StoreStats ShardedStore::stats() const {
  kvstore::StoreStats total;
  for (const auto& shp : shards_) {
    std::lock_guard lk(shp->mu);
    const auto& s = shp->store.stats();
    total.puts += s.puts;
    total.gets += s.gets;
    total.dels += s.dels;
    total.hits += s.hits;
    total.misses += s.misses;
    total.auth_failures += s.auth_failures;
    total.bytes_in += s.bytes_in;
    total.bytes_out += s.bytes_out;
  }
  return total;
}

}  // namespace memfss::rt
