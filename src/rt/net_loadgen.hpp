// Socket-mode load generator: the same seed-deterministic op streams
// as rt::run_loadgen (rt/opstream.hpp), replayed over loopback TCP
// against an rt::TcpServer -- N client threads x M pipelined
// connections each, with per-request-id accounting so a lost or
// duplicated response is a hard failure, not noise.
//
// The digest contract carries over the wire: with one client thread,
// one server worker, and one connection, `result_digest` equals the
// in-process run's digest for the same options (the frames decode to
// the same ops in the same order, and responses carry the stored
// value's checksum). That equality is pinned by
// tests/test_rt_tcp.cpp; request-id accounting (lost == duplicated ==
// 0) is the acceptance gate `bench/loadgen --net` enforces.
#pragma once

#include <cstdint>
#include <string>

#include "obs/histogram.hpp"
#include "rt/loadgen.hpp"

namespace memfss::rt {

struct NetLoadgenOptions {
  LoadgenOptions base;  ///< stream shape + server sizing (threads, shards...)
  std::size_t connections_per_thread = 1;  ///< pipelined conns per client
  std::size_t reactors = 1;                ///< TcpServer epoll threads
};

struct NetLoadgenResult {
  NetLoadgenOptions opt;
  std::uint64_t puts = 0;        ///< ok puts
  std::uint64_t gets = 0;        ///< ok gets (hits)
  std::uint64_t dels = 0;        ///< ok dels
  std::uint64_t not_found = 0;   ///< clean misses
  std::uint64_t rejected = 0;    ///< queue-full rejections
  std::uint64_t overloaded = 0;  ///< QoS sheds over the wire
  std::uint64_t retry_after_hints = 0;  ///< overloaded frames with a hint
  std::uint64_t errors = 0;      ///< any other status
  std::uint64_t responses = 0;   ///< response frames matched to a request
  std::uint64_t lost = 0;        ///< requests never answered
  std::uint64_t duplicated = 0;  ///< responses with an unknown/reused id
  std::uint64_t transport_errors = 0;  ///< send/recv failures (client side)
  std::uint64_t bytes_in = 0;    ///< server-side rt.net.bytes_in
  std::uint64_t bytes_out = 0;   ///< server-side rt.net.bytes_out
  double wall_s = 0.0;
  double ops_per_sec = 0.0;      ///< answered ops / wall
  obs::HistogramSummary latency;  ///< server-side per-op latency
  std::uint64_t result_digest = 0;  ///< same folding as run_loadgen
};

NetLoadgenResult run_net_loadgen(const NetLoadgenOptions& opt);

std::string net_loadgen_csv_header();
std::string net_loadgen_csv_row(const NetLoadgenResult& r);

}  // namespace memfss::rt
