// Client: the POSIX-facing layer of MemFSS (stands in for the FUSE
// module, §III-C). Bound to one *own* node; workflow tasks running on that
// node call it for all I/O.
//
// Responsibilities reproduced from the paper:
//   - striping: files are cut into stripe_size pieces so load is balanced
//     across the nodes of a class; the placement hash runs per stripe;
//   - routing: two-layer weighted HRW decides the server of each stripe,
//     using the *placement epoch recorded in the file's metadata* (so
//     files written before a victim-class change stay resolvable);
//   - lazy relocation: when a stripe is found on a lower-ranked node
//     after a membership change, it is moved to the top-ranked node in
//     the background, without stopping the computation (§V-C);
//   - redundancy: replication on the next-highest HRW ranks, or
//     Reed-Solomon shards across the class (§III-E).
//
// Files come in two flavours: *ghost* writes carry sizes only (cluster
// experiments, where datasets reach hundreds of GB) and *materialized*
// writes carry real bytes (tests, standalone examples) -- both exercise
// the same placement and transfer paths.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "fs/namespace.hpp"
#include "fs/placement.hpp"
#include "kvstore/blob.hpp"
#include "sim/task.hpp"

namespace memfss::fs {

class FileSystem;

class Client {
 public:
  Client(FileSystem& fs, NodeId node) : fs_(&fs), node_(node) {}

  NodeId node() const { return node_; }

  // --- namespace operations (forwarded to the metadata service) ----------
  sim::Task<Status> mkdirs(std::string path);
  sim::Task<Result<Stat>> stat(std::string path);
  sim::Task<Result<std::vector<std::string>>> readdir(std::string path);
  sim::Task<Status> rename(std::string from, std::string to);

  // --- data operations -----------------------------------------------------
  /// Streaming write of `size` accounted-only bytes. `tag` disambiguates
  /// content identity for checksum purposes. `extra_requests_per_mib`
  /// models chatty clients (BLAST) that issue many sub-stripe requests:
  /// the volume still moves in bulk, but per-request server costs and
  /// request-rate telemetry are charged.
  sim::Task<Status> write_file(std::string path, Bytes size,
                               std::uint64_t tag = 0,
                               double extra_requests_per_mib = 0.0);

  /// Write real bytes.
  sim::Task<Status> write_file_bytes(std::string path,
                                     std::vector<std::uint8_t> data);

  /// Read a whole file; returns the byte count delivered.
  sim::Task<Result<Bytes>> read_file(std::string path,
                                     double extra_requests_per_mib = 0.0);

  /// Read real bytes back (file must have been written materialized).
  sim::Task<Result<std::vector<std::uint8_t>>> read_file_bytes(
      std::string path);

  /// Delete the file and all of its stripes/replicas/shards.
  sim::Task<Status> unlink(std::string path);

 private:
  struct OpState {  // shared by the pipelined per-stripe subtasks
    Status status{};
    double extra_requests_per_mib = 0.0;
  };

  sim::Task<Status> write_impl(std::string path, Bytes size,
                               const std::vector<std::uint8_t>* data,
                               std::uint64_t tag,
                               double extra_requests_per_mib);
  // The per-stripe entry points carry the stripe key twice: the string
  // (kvstore key, logs) and its precomputed placement digest
  // (Namespace::stripe_key_digest), so retry/probe loops re-resolve
  // placement against live membership without re-hashing the key.
  sim::Task<> write_stripe(const ClassHrwPolicy& policy, const FileAttr& attr,
                           std::string key, std::uint64_t key_digest,
                           kvstore::Blob blob, OpState& state);
  sim::Task<> write_stripe_erasure(const ClassHrwPolicy& policy,
                                   const FileAttr& attr, std::string key,
                                   std::uint64_t key_digest,
                                   kvstore::Blob blob, OpState& state);
  sim::Task<Result<kvstore::Blob>> read_stripe(const ClassHrwPolicy& policy,
                                               const FileAttr& attr,
                                               std::string key,
                                               std::uint64_t key_digest,
                                               double extra_requests_per_mib);
  sim::Task<Result<kvstore::Blob>> read_stripe_erasure(
      const ClassHrwPolicy& policy, const FileAttr& attr, std::string key,
      std::uint64_t key_digest);
  sim::Task<Result<kvstore::Blob>> probe_ranked(const ClassHrwPolicy& policy,
                                                const FileAttr& attr,
                                                const std::string& key,
                                                std::uint64_t key_digest);

  /// get() under the config's rpc_timeout; a deadline miss counts as a
  /// timeout, reports the node suspect, and maps to `unavailable`.
  /// `faulted` (optional) is set on timeout/unavailable/io_error.
  sim::Task<Result<kvstore::Blob>> timed_get(NodeId node, std::string key,
                                             bool* faulted);

  /// Record one finished stripe operation in the deployment's metrics
  /// registry (latency histogram `hist`) and, when fs tracing is on, as a
  /// span named `span` with the stripe key as detail.
  void record_stripe_op(const char* hist, const char* span, SimTime t0,
                        const std::string& key);

  /// Write one replica (`idx` = replica rank) or one erasure shard
  /// (`idx` = shard index) with timeout + bounded retry. Placement is
  /// re-resolved on every attempt (from `base_digest`, the digest of the
  /// base stripe key), so a retry lands on the post-failure membership
  /// instead of the dead node.
  sim::Task<> put_stripe_copy(const ClassHrwPolicy& policy,
                              const FileAttr& attr,
                              std::uint64_t base_digest,
                              std::string store_key, std::size_t idx,
                              std::shared_ptr<kvstore::Blob> blob,
                              OpState& state);

  FileSystem* fs_;
  NodeId node_;
};

}  // namespace memfss::fs
