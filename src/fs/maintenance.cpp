// Maintenance operations: active rebalance and redundancy repair.
//
// Rebalance is the eager complement of the paper's lazy data movement:
// after a victim class changes the placement epoch, files written under
// older epochs still resolve (their metadata records the old weights),
// but their stripes live where the old epoch put them. rebalance_all()
// migrates every such file to the current epoch's placement and advances
// its metadata epoch -- after it completes, no read ever probes below
// rank 0 again.
//
// Repair restores redundancy after a node loss: replicated files get
// missing copies re-streamed from a survivor; erasure files get missing
// shards rebuilt (real Reed-Solomon reconstruction for materialized
// data; size-accounting recreation for ghost data).
#include <algorithm>
#include <set>

#include "common/log.hpp"
#include "erasure/reed_solomon.hpp"
#include "fs/filesystem.hpp"
#include "fs/namespace.hpp"
#include "hash/hashes.hpp"

namespace memfss::fs {

namespace {

std::string shard_key(const std::string& stripe, std::size_t j) {
  return stripe + ".s" + std::to_string(j);
}

std::size_t copies_of(const FileAttr& attr) {
  return attr.redundancy == RedundancyMode::replicated
             ? std::max<std::size_t>(1, attr.copies)
             : 1;
}

}  // namespace

sim::Task<FileSystem::MaintenanceReport> FileSystem::rebalance_all() {
  MaintenanceReport report;
  const NodeId admin = config_.own_nodes.front();
  const std::uint32_t target_epoch = current_epoch();
  const ClassHrwPolicy target = policy_for_epoch(target_epoch);

  for (const auto& [path, st] : meta_.ns().list_files()) {
    ++report.files_scanned;
    if (st.attr.epoch == target_epoch) continue;
    const ClassHrwPolicy old = policy_for_epoch(st.attr.epoch);

    bool moved_any = false;
    for (std::size_t i = 0; i < st.stripe_count; ++i) {
      const std::string key = Namespace::stripe_key(st.inode, i);
      const std::uint64_t digest = Namespace::stripe_key_digest(st.inode, i);
      if (st.attr.redundancy == RedundancyMode::erasure) {
        const auto old_order = old.probe_order(digest);
        const auto new_order = target.probe_order(digest);
        const std::size_t shards = st.attr.ec_k + st.attr.ec_m;
        for (std::size_t j = 0; j < shards; ++j) {
          const NodeId src = old_order[j % old_order.size()];
          const NodeId dst = new_order[j % new_order.size()];
          if (src == dst || !has_server(src) || !has_server(dst)) continue;
          const std::string sk = shard_key(key, j);
          auto sz = server(src).resident_size(config_.auth_token, sk);
          if (!sz.ok()) continue;  // not there (already moved / lost)
          auto stt = co_await server(src).migrate_key(config_.auth_token,
                                                      sk, server(dst));
          if (stt.ok()) {
            ++report.stripes_moved;
            report.bytes_moved += sz.value();
            moved_any = true;
          }
        }
      } else {
        const std::size_t copies = copies_of(st.attr);
        const auto old_nodes = old.place(digest, copies);
        const auto new_nodes = target.place(digest, copies);
        if (old_nodes == new_nodes) continue;
        const std::set<NodeId> old_set(old_nodes.begin(), old_nodes.end());
        const std::set<NodeId> new_set(new_nodes.begin(), new_nodes.end());
        // Source: any old holder that still has the stripe.
        NodeId holder = kInvalidNode;
        Bytes size = 0;
        for (NodeId n : old_nodes) {
          if (!has_server(n)) continue;
          auto sz = server(n).resident_size(config_.auth_token, key);
          if (sz.ok()) {
            holder = n;
            size = sz.value();
            break;
          }
        }
        if (holder == kInvalidNode) continue;  // lazy move already done
        for (NodeId dst : new_nodes) {
          if (old_set.count(dst) || !has_server(dst)) continue;
          auto stt = co_await server(holder).replicate_key(
              config_.auth_token, key, server(dst));
          if (stt.ok()) {
            ++report.stripes_moved;
            report.bytes_moved += size;
            moved_any = true;
          } else if (report.status.ok()) {
            report.status = stt;
          }
        }
        for (NodeId src : old_nodes) {
          if (new_set.count(src) || !has_server(src)) continue;
          (void)co_await server(src).del(admin, config_.auth_token, key);
        }
      }
    }
    auto stt = co_await meta_.set_epoch(admin, st.inode, target_epoch);
    if (!stt.ok() && report.status.ok()) report.status = stt;
    if (moved_any) ++report.files_updated;
  }
  LOG_INFO("fs") << "rebalance: " << report.stripes_moved
                 << " stripes moved, " << report.files_updated
                 << " files updated";
  co_return report;
}

sim::Task<> FileSystem::repair_stripe(const ClassHrwPolicy& policy,
                                      const Stat& st,
                                      std::size_t stripe_index,
                                      MaintenanceReport& report) {
  const NodeId admin = config_.own_nodes.front();
  const std::string key = Namespace::stripe_key(st.inode, stripe_index);
  const std::uint64_t digest =
      Namespace::stripe_key_digest(st.inode, stripe_index);
  if (st.attr.redundancy == RedundancyMode::replicated) {
    const auto targets = policy.place(digest, copies_of(st.attr));
    NodeId holder = kInvalidNode;
    Bytes size = 0;
    std::vector<NodeId> missing;
    for (NodeId n : targets) {
      if (!has_server(n)) continue;
      if (auto sz = server(n).resident_size(config_.auth_token, key);
          sz.ok()) {
        if (holder == kInvalidNode) {
          holder = n;
          size = sz.value();
        }
      } else {
        missing.push_back(n);
      }
    }
    if (holder == kInvalidNode) {
      // Last resort before declaring data loss: a survivor outside the
      // expected ranks. A node retirement shifts every HRW rank below the
      // dead node's, so copies can sit one rank off; mid-drain nodes hold
      // keys with no rank at all.
      for (NodeId n : policy.probe_order(digest)) {
        if (!has_server(n)) continue;
        if (auto sz = server(n).resident_size(config_.auth_token, key);
            sz.ok()) {
          holder = n;
          size = sz.value();
          break;
        }
      }
    }
    if (holder == kInvalidNode) {
      for (NodeId n : draining_) {
        if (!has_server(n)) continue;
        if (auto sz = server(n).resident_size(config_.auth_token, key);
            sz.ok()) {
          holder = n;
          size = sz.value();
          break;
        }
      }
    }
    if (holder == kInvalidNode) {
      if (report.status.ok())
        report.status = {Errc::corruption, "all copies lost: " + key};
      co_return;
    }
    for (NodeId dst : missing) {
      auto stt = co_await server(holder).replicate_key(config_.auth_token,
                                                       key, server(dst));
      if (stt.ok()) {
        ++report.stripes_repaired;
        report.bytes_moved += size;
      }
    }
  } else {  // erasure
    const auto order = policy.probe_order(digest);
    if (order.empty()) co_return;
    const std::size_t k = st.attr.ec_k, m = st.attr.ec_m;
    std::vector<std::pair<std::size_t, kvstore::Blob>> have;
    std::vector<std::size_t> missing;
    for (std::size_t j = 0; j < k + m; ++j) {
      const std::string sk = shard_key(key, j);
      // Expected node first, then the rest of the order and mid-drain
      // nodes: a retirement shifts the ranks below the dead node, so a
      // surviving shard is often one rank off its expected home.
      const NodeId expected = order[j % order.size()];
      NodeId shard_holder = kInvalidNode;
      auto present = [&](NodeId n) {
        return has_server(n) &&
               server(n).resident_size(config_.auth_token, sk).ok();
      };
      if (present(expected)) {
        shard_holder = expected;
      } else {
        for (NodeId n : order) {
          if (n != expected && present(n)) {
            shard_holder = n;
            break;
          }
        }
      }
      if (shard_holder == kInvalidNode) {
        for (NodeId n : draining_) {
          if (present(n)) {
            shard_holder = n;
            break;
          }
        }
      }
      bool found = false;
      if (shard_holder != kInvalidNode) {
        auto r =
            co_await server(shard_holder).get(admin, config_.auth_token, sk);
        if (r.ok()) {
          have.emplace_back(j, std::move(r.value()));
          found = true;
        }
      }
      if (!found) missing.push_back(j);
    }
    if (missing.empty()) co_return;
    if (have.size() < k) {
      if (report.status.ok())
        report.status = {Errc::corruption,
                         "fewer than k shards survive: " + key};
      co_return;
    }
    const bool ghost = have.front().second.is_ghost();
    std::vector<std::vector<std::uint8_t>> slots;
    erasure::ReedSolomon rs(std::max<std::size_t>(1, k), m);
    if (!ghost) {
      slots.assign(k + m, {});
      for (auto& [j, b] : have)
        slots[j].assign(b.bytes().begin(), b.bytes().end());
      if (auto stt = rs.reconstruct(slots); !stt.ok()) {
        if (report.status.ok()) report.status = stt;
        co_return;
      }
    }
    // Reconstruction happens on the admin node's CPU.
    const Bytes ss = have.front().second.size();
    co_await cluster_.node(admin).cpu().consume(
        0.6e-9 * static_cast<double>(ss) * static_cast<double>(k), 1.0);
    for (std::size_t j : missing) {
      const NodeId dst = order[j % order.size()];
      if (!has_server(dst)) continue;
      kvstore::Blob shard = ghost ? kvstore::Blob::ghost(ss, 0)
                                  : kvstore::Blob::materialized(slots[j]);
      auto stt = co_await server(dst).put(admin, config_.auth_token,
                                          shard_key(key, j),
                                          std::move(shard));
      if (stt.ok()) {
        ++report.stripes_repaired;
        report.bytes_moved += ss;
      }
    }
  }
}

sim::Task<FileSystem::MaintenanceReport> FileSystem::repair_all() {
  MaintenanceReport report;
  for (const auto& [path, st] : meta_.ns().list_files()) {
    ++report.files_scanned;
    if (st.attr.redundancy == RedundancyMode::none) continue;
    const ClassHrwPolicy policy = policy_for_epoch(st.attr.epoch);
    auto& repair_hist = cluster_.obs().metrics.histogram("fs.repair.latency");
    for (std::size_t i = 0; i < st.stripe_count; ++i) {
      const SimTime t0 = cluster_.sim().now();
      co_await repair_stripe(policy, st, i, report);
      repair_hist.add(cluster_.sim().now() - t0);
    }
  }
  LOG_INFO("fs") << "repair: " << report.stripes_repaired
                 << " stripes repaired";
  co_return report;
}

sim::Task<FileSystem::MaintenanceReport> FileSystem::repair_affected(
    std::vector<std::pair<InodeId, std::size_t>> stripes) {
  MaintenanceReport report;
  std::set<InodeId> files_seen;
  auto& repair_hist = cluster_.obs().metrics.histogram("fs.repair.latency");
  for (const auto& [ino, idx] : stripes) {
    auto st = meta_.ns().stat(ino);
    if (!st.ok()) continue;  // unlinked since the failure
    if (files_seen.insert(ino).second) ++report.files_scanned;
    if (st.value().attr.redundancy == RedundancyMode::none) continue;
    if (idx >= st.value().stripe_count) continue;
    const ClassHrwPolicy policy = policy_for_epoch(st.value().attr.epoch);
    const SimTime t0 = cluster_.sim().now();
    co_await repair_stripe(policy, st.value(), idx, report);
    repair_hist.add(cluster_.sim().now() - t0);
  }
  LOG_INFO("fs") << "targeted repair: " << stripes.size()
                 << " stripes checked, " << report.stripes_repaired
                 << " restored";
  co_return report;
}

sim::Task<FileSystem::MaintenanceReport> FileSystem::scrub_all() {
  MaintenanceReport report;
  const NodeId admin = config_.own_nodes.front();

  for (const auto& [path, st] : meta_.ns().list_files()) {
    ++report.files_scanned;
    const ClassHrwPolicy policy = policy_for_epoch(st.attr.epoch);
    for (std::size_t i = 0; i < st.stripe_count; ++i) {
      const std::string key = Namespace::stripe_key(st.inode, i);
      const std::uint64_t digest = Namespace::stripe_key_digest(st.inode, i);
      // Enumerate every (node, key) copy this stripe should have.
      std::vector<std::pair<NodeId, std::string>> copies;
      if (st.attr.redundancy == RedundancyMode::erasure) {
        const auto order = policy.probe_order(digest);
        const std::size_t shards = st.attr.ec_k + st.attr.ec_m;
        for (std::size_t j = 0; j < shards && !order.empty(); ++j)
          copies.emplace_back(order[j % order.size()], shard_key(key, j));
      } else {
        for (NodeId n : policy.place(digest, copies_of(st.attr)))
          copies.emplace_back(n, key);
      }
      for (const auto& [node, ck] : copies) {
        if (!has_server(node)) continue;
        // The verification read is charged like any client read.
        auto r = co_await server(node).get(admin, config_.auth_token, ck);
        if (!r.ok()) continue;  // absence is repair's business, not ours
        if (r.value().verify()) continue;
        ++report.corruptions_found;
        LOG_WARN("fs") << "scrub: corrupt copy of " << ck << " on node "
                       << node;
        (void)co_await server(node).del(admin, config_.auth_token, ck);
        if (st.attr.redundancy == RedundancyMode::none &&
            report.status.ok()) {
          report.status = {Errc::corruption,
                           "unredundant stripe lost: " + key};
        }
      }
    }
  }
  // Restore redundancy for everything the scrub dropped.
  if (report.corruptions_found > 0) {
    auto repair = co_await repair_all();
    report.stripes_repaired = repair.stripes_repaired;
    if (report.status.ok()) report.status = repair.status;
  }
  LOG_INFO("fs") << "scrub: " << report.corruptions_found
                 << " corrupt copies dropped, " << report.stripes_repaired
                 << " restored";
  co_return report;
}

}  // namespace memfss::fs
