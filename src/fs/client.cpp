#include "fs/client.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

#include "common/log.hpp"
#include "erasure/reed_solomon.hpp"
#include "fs/filesystem.hpp"
#include "hash/hashes.hpp"
#include "sim/sync.hpp"

namespace memfss::fs {

namespace {

/// Content tag of a ghost stripe: deterministic in (stripe-key digest,
/// file tag) so a parity-reconstructed ghost matches the original checksum.
std::uint64_t ghost_tag(std::uint64_t key_digest, std::uint64_t file_tag) {
  return hash::mix64(key_digest, file_tag);
}

/// Background stripe migration (lazy relocation / dedup is free: drain on
/// an already-moved key is a no-op not_found).
sim::Task<> relocate(FileSystem* fs, std::string key, NodeId src,
                     NodeId dst) {
  auto st = co_await fs->server(src).migrate_key(fs->token(), key,
                                                 fs->server(dst));
  if (st.ok()) ++fs->counters().lazy_relocations;
}

/// Effective number of full copies a file keeps (erasure handled apart).
std::size_t copy_count(const FileAttr& attr) {
  return attr.redundancy == RedundancyMode::replicated
             ? std::max<std::size_t>(1, attr.copies)
             : 1;
}

std::string shard_key(const std::string& stripe, std::size_t j) {
  return stripe + ".s" + std::to_string(j);
}

/// Exponential backoff with deterministic jitter. The jitter derives from
/// (key, attempt) -- not from a shared RNG -- so retry timing is a pure
/// function of the failure pattern and runs stay seed-reproducible while
/// concurrent retries on different stripes still de-synchronize.
SimTime backoff_delay(const FileSystemConfig& cfg, std::string_view key,
                      int attempt) {
  SimTime d = cfg.retry_backoff * static_cast<double>(1u << std::min(attempt, 20));
  d = std::min(d, cfg.retry_backoff_max);
  const double u = static_cast<double>(
                       hash::mix64(hash::key_digest(key),
                                   0x9e3779b9u + static_cast<std::uint64_t>(
                                                     attempt)) >>
                       11) *
                   0x1.0p-53;
  return d * (1.0 + cfg.retry_jitter * u);
}

}  // namespace

void Client::record_stripe_op(const char* hist, const char* span, SimTime t0,
                              const std::string& key) {
  auto& obs = fs_->cluster().obs();
  obs.metrics.histogram(hist).add(fs_->cluster().sim().now() - t0);
  if (obs.tracer.enabled(obs::Component::fs))
    obs.tracer.span(obs::Component::fs, node_, span, t0, key);
}

// --- namespace forwards -----------------------------------------------------

sim::Task<Status> Client::mkdirs(std::string path) {
  co_return co_await fs_->meta().mkdirs(node_, std::move(path));
}

sim::Task<Result<Stat>> Client::stat(std::string path) {
  co_return co_await fs_->meta().stat(node_, std::move(path));
}

sim::Task<Result<std::vector<std::string>>> Client::readdir(
    std::string path) {
  co_return co_await fs_->meta().readdir(node_, std::move(path));
}

sim::Task<Status> Client::rename(std::string from, std::string to) {
  co_return co_await fs_->meta().rename(node_, std::move(from),
                                        std::move(to));
}

// --- write path --------------------------------------------------------------

sim::Task<Status> Client::write_file(std::string path, Bytes size,
                                     std::uint64_t tag,
                                     double extra_requests_per_mib) {
  co_return co_await write_impl(std::move(path), size, nullptr, tag,
                                extra_requests_per_mib);
}

sim::Task<Status> Client::write_file_bytes(std::string path,
                                           std::vector<std::uint8_t> data) {
  co_return co_await write_impl(std::move(path), data.size(), &data, 0, 0.0);
}

namespace {
/// Window-guarded wrapper so at most `write_window` stripes are in flight
/// per file operation (models the FUSE layer's request pipelining).
sim::Task<> guarded(sim::Semaphore& sem, sim::Task<> inner) {
  co_await sem.acquire();
  co_await std::move(inner);
  sem.release();
}
}  // namespace

sim::Task<Status> Client::write_impl(std::string path, Bytes size,
                                     const std::vector<std::uint8_t>* data,
                                     std::uint64_t tag,
                                     double extra_requests_per_mib) {
  const auto& cfg = fs_->config();
  FileAttr attr;
  attr.size = 0;
  attr.stripe_size = cfg.stripe_size;
  attr.epoch = fs_->current_epoch();
  attr.redundancy = cfg.redundancy;
  attr.copies = cfg.copies;
  attr.ec_k = cfg.ec_k;
  attr.ec_m = cfg.ec_m;

  auto created = co_await fs_->meta().create(node_, path, attr);
  if (!created.ok()) co_return created.error();
  const InodeId ino = created.value();

  const ClassHrwPolicy policy = fs_->policy_for_epoch(attr.epoch);
  const std::size_t n_stripes = Namespace::stripe_count(size, attr.stripe_size);

  auto& sim = fs_->cluster().sim();
  OpState state;
  state.extra_requests_per_mib = extra_requests_per_mib;
  sim::Semaphore window(sim, cfg.write_window);
  std::vector<sim::Task<>> tasks;
  tasks.reserve(n_stripes);
  for (std::size_t i = 0; i < n_stripes; ++i) {
    const Bytes off = static_cast<Bytes>(i) * attr.stripe_size;
    const Bytes len = std::min<Bytes>(attr.stripe_size, size - off);
    std::string key = Namespace::stripe_key(ino, i);
    const std::uint64_t digest = Namespace::stripe_key_digest(ino, i);
    kvstore::Blob blob;
    if (data) {
      blob = kvstore::Blob::materialized(std::vector<std::uint8_t>(
          data->begin() + static_cast<std::ptrdiff_t>(off),
          data->begin() + static_cast<std::ptrdiff_t>(off + len)));
    } else {
      blob = kvstore::Blob::ghost(len, ghost_tag(digest, tag));
    }
    sim::Task<> op =
        attr.redundancy == RedundancyMode::erasure
            ? write_stripe_erasure(policy, attr, std::move(key), digest,
                                   std::move(blob), state)
            : write_stripe(policy, attr, std::move(key), digest,
                           std::move(blob), state);
    tasks.push_back(guarded(window, std::move(op)));
  }
  co_await sim::when_all(sim, std::move(tasks));
  if (!state.status.ok()) co_return state.status;

  if (auto st = co_await fs_->meta().set_size(node_, ino, size); !st.ok())
    co_return st;
  fs_->counters().bytes_written += size;
  co_return Status{};
}

sim::Task<> Client::put_stripe_copy(const ClassHrwPolicy& policy,
                                    const FileAttr& attr,
                                    std::uint64_t base_digest,
                                    std::string store_key, std::size_t idx,
                                    std::shared_ptr<kvstore::Blob> blob,
                                    OpState& state) {
  const auto& cfg = fs_->config();
  auto& sim = fs_->cluster().sim();
  Status last{Errc::unavailable, "no servers: " + store_key};
  for (int attempt = 0; attempt <= cfg.max_retries; ++attempt) {
    if (attempt > 0) {
      ++fs_->counters().write_retries;
      fs_->cluster().obs().metrics.counter("fs.write.retries").inc();
      co_await sim.delay(backoff_delay(cfg, store_key, attempt - 1));
    }
    // Fresh placement every attempt: a crash between attempts moved the
    // target (membership removal reshuffles HRW).
    NodeId target = kInvalidNode;
    std::vector<NodeId> placed;  // replica homes (co-location guard)
    if (attr.redundancy == RedundancyMode::erasure) {
      const auto order = policy.probe_order(base_digest);
      if (!order.empty()) target = order[idx % order.size()];
    } else {
      placed = policy.place(base_digest, copy_count(attr));
      if (!placed.empty()) target = placed[idx % placed.size()];
    }
    if (target == kInvalidNode || !fs_->has_server(target)) continue;
    if (!fs_->health().allow(target, sim.now())) {
      // Breaker open on the placed target: steer this copy to the next
      // allowed node in the probe order instead of burning the attempt.
      // Replicas never reroute onto another replica's home -- two copies
      // behind one NIC is worse than a delayed write. Reads find the
      // misplaced copy by probing the full order; lazy relocation moves
      // it home once the breaker closes.
      fs_->health().count_rejection();
      const auto order = policy.probe_order(base_digest);
      NodeId alt = kInvalidNode;
      for (NodeId cand : order) {
        if (cand == target || !fs_->has_server(cand)) continue;
        if (std::find(placed.begin(), placed.end(), cand) != placed.end())
          continue;
        if (fs_->health().allow(cand, sim.now())) {
          alt = cand;
          break;
        }
      }
      if (alt == kInvalidNode) {
        ++fs_->counters().breaker_rejections;
        last = {Errc::rejected, "all breakers open: " + store_key};
        continue;
      }
      ++fs_->counters().breaker_reroutes;
      target = alt;
    }
    auto& srv = fs_->server(target);
    Status st{};
    if (cfg.rpc_timeout > 0) {
      auto r = co_await sim::with_timeout(
          sim, srv.put(node_, fs_->token(), store_key, *blob),
          cfg.rpc_timeout);
      if (!r) {  // deadline missed: dead, stalled, or just slow -- walk away
        ++fs_->counters().rpc_timeouts;
        fs_->report_suspect(target);
        fs_->health().record(target, Errc::timeout, sim.now());
        last = {Errc::timeout, "rpc timeout: " + store_key};
        continue;
      }
      st = *r;
    } else {
      st = co_await srv.put(node_, fs_->token(), store_key, *blob);
    }
    fs_->health().record(target, st.ok() ? Errc::ok : st.code(), sim.now());
    if (st.ok()) co_return;
    last = st;
    if (!errc_connectivity(st.code())) break;  // permission etc.: do not spin
    fs_->report_suspect(target);
  }
  state.status = last;
}

sim::Task<> Client::write_stripe(const ClassHrwPolicy& policy,
                                 const FileAttr& attr, std::string key,
                                 std::uint64_t key_digest, kvstore::Blob blob,
                                 OpState& state) {
  const std::size_t copies = copy_count(attr);
  auto& sim = fs_->cluster().sim();
  const SimTime t0 = sim.now();
  const double burst = state.extra_requests_per_mib *
                       static_cast<double>(blob.size()) /
                       static_cast<double>(units::MiB);
  auto shared = std::make_shared<kvstore::Blob>(std::move(blob));
  if (copies == 1) {
    co_await put_stripe_copy(policy, attr, key_digest, key, 0, shared,
                             state);
    if (burst > 0) {
      const auto targets = policy.place(key_digest, 1);
      if (!targets.empty() && fs_->has_server(targets[0]))
        co_await fs_->server(targets[0]).request_burst(node_, burst);
    }
  } else {
    // Replicas stream in parallel (client NIC is the shared bottleneck).
    std::vector<sim::Task<>> puts;
    puts.reserve(copies);
    for (std::size_t c = 0; c < copies; ++c)
      puts.push_back(put_stripe_copy(policy, attr, key_digest, key, c,
                                     shared, state));
    co_await sim::when_all(sim, std::move(puts));
  }
  ++fs_->counters().stripes_written;
  record_stripe_op("fs.write_stripe.latency", "fs.write_stripe", t0, key);
}

sim::Task<> Client::write_stripe_erasure(const ClassHrwPolicy& policy,
                                         const FileAttr& attr,
                                         std::string key,
                                         std::uint64_t key_digest,
                                         kvstore::Blob blob, OpState& state) {
  const std::size_t k = attr.ec_k, m = attr.ec_m;
  assert(k >= 1);
  const auto order = policy.probe_order(key_digest);
  if (order.empty()) {
    state.status = Status{Errc::unavailable, "no servers"};
    co_return;
  }
  auto& sim = fs_->cluster().sim();
  const SimTime t0 = sim.now();

  // Encoding cost on the client node: ~1 byte of GF math per payload byte
  // per parity shard.
  const double enc_bytes = static_cast<double>(blob.size()) *
                           static_cast<double>(m) / static_cast<double>(k);
  co_await fs_->cluster().node(node_).cpu().consume(0.3e-9 * enc_bytes, 1.0);

  std::vector<kvstore::Blob> shards;
  shards.reserve(k + m);
  if (blob.is_ghost() || blob.size() == 0) {
    const Bytes ss = (blob.size() + k - 1) / k;
    for (std::size_t j = 0; j < k + m; ++j)
      shards.push_back(kvstore::Blob::ghost(
          ss, hash::mix64(blob.checksum(), j)));
  } else {
    erasure::ReedSolomon rs(k, m);
    auto raw = rs.encode(blob.bytes());
    for (auto& s : raw)
      shards.push_back(kvstore::Blob::materialized(std::move(s)));
  }

  std::vector<sim::Task<>> puts;
  puts.reserve(shards.size());
  for (std::size_t j = 0; j < shards.size(); ++j) {
    puts.push_back(put_stripe_copy(
        policy, attr, key_digest, shard_key(key, j), j,
        std::make_shared<kvstore::Blob>(std::move(shards[j])), state));
  }
  co_await sim::when_all(sim, std::move(puts));
  ++fs_->counters().stripes_written;
  record_stripe_op("fs.write_stripe.latency", "fs.write_stripe", t0, key);
}

// --- read path ----------------------------------------------------------------

namespace {

/// Shared get-with-deadline implementation. Free of Client state on
/// purpose: hedged reads abandon the losing arm, and an abandoned
/// coroutine must only reference objects that outlive the read -- the
/// FileSystem and its servers qualify, the by-value Client handle and the
/// caller's stack do not.
sim::Task<Result<kvstore::Blob>> timed_get_impl(FileSystem* fs,
                                                NodeId client_node, NodeId n,
                                                std::string key,
                                                bool* faulted) {
  auto& sim = fs->cluster().sim();
  // Circuit breaker: a node that kept timing out is rejected locally at
  // zero simulated cost -- the probe loop walks to the next replica
  // without burning a deadline on a peer known to be unreachable.
  if (!fs->health().allow(n, sim.now())) {
    ++fs->counters().breaker_rejections;
    fs->health().count_rejection();
    co_return Error{Errc::rejected,
                    "breaker open: node " + std::to_string(n)};
  }
  const SimTime deadline = fs->config().rpc_timeout;
  Result<kvstore::Blob> out = Error{Errc::timeout, "rpc timeout"};
  if (deadline > 0) {
    auto r = co_await sim::with_timeout(
        sim, fs->server(n).get(client_node, fs->token(), std::move(key)),
        deadline);
    if (!r) {
      ++fs->counters().rpc_timeouts;
      if (faulted) *faulted = true;
      fs->report_suspect(n);
      fs->health().record(n, Errc::timeout, sim.now());
      co_return out;
    }
    out = std::move(*r);
  } else {
    out = co_await fs->server(n).get(client_node, fs->token(),
                                     std::move(key));
  }
  if (!out.ok() && errc_health_fault(out.code())) {
    if (faulted) *faulted = true;
    fs->report_suspect(n);
  }
  fs->health().record(n, out.ok() ? Errc::ok : out.code(), sim.now());
  co_return std::move(out);
}

/// Shared state of one hedged read: first success wins, the loser is
/// abandoned (its result discarded on arrival). Held by shared_ptr from
/// every arm so it outlives whichever finishes last.
struct HedgeState {
  explicit HedgeState(sim::Simulator& s) : done(s) {}
  Result<kvstore::Blob> winner{Error{Errc::not_found, ""}};
  bool have_winner = false;
  NodeId winner_node = kInvalidNode;
  std::size_t winner_rank = 0;
  bool faulted = false;
  std::size_t launched = 0;
  std::size_t finished = 0;
  sim::Event done;  ///< first success, or all arms failed
};

sim::Task<> hedge_arm(FileSystem* fs, NodeId client_node, NodeId n,
                      std::size_t rank, std::string key,
                      std::shared_ptr<HedgeState> st) {
  bool fault = false;  // this frame outlives the op; safe for the impl
  auto r = co_await timed_get_impl(fs, client_node, n, std::move(key),
                                   &fault);
  st->faulted |= fault;
  ++st->finished;
  if (r.ok() && !st->have_winner) {
    st->have_winner = true;
    st->winner = std::move(r);
    st->winner_node = n;
    st->winner_rank = rank;
    st->done.trigger();
  } else if (st->finished >= st->launched && !st->have_winner) {
    st->done.trigger();  // idempotent; no-op if a winner already fired it
  }
}

}  // namespace

sim::Task<Result<kvstore::Blob>> Client::timed_get(NodeId n, std::string key,
                                                   bool* faulted) {
  co_return co_await timed_get_impl(fs_, node_, n, std::move(key), faulted);
}

sim::Task<Result<kvstore::Blob>> Client::probe_ranked(
    const ClassHrwPolicy& policy, const FileAttr& attr,
    const std::string& key, std::uint64_t key_digest) {
  const auto& cfg = fs_->config();
  const std::size_t copies = copy_count(attr);
  auto& sim = fs_->cluster().sim();
  // A read is *degraded* when it succeeds after a fault-type failure
  // (timeout / unavailable / io_error); plain not_found misses from lazy
  // relocation do not count.
  bool faulted = false;
  const int rounds = std::max(1, cfg.max_retries);
  for (int round = 0; round < rounds; ++round) {
    // Refresh: members change. The digest spares the re-hash per round.
    const auto order = policy.probe_order(key_digest);

    // Hedged read (first round, replicated files only): issue the get to
    // the top-ranked holder, and if it has not resolved after the
    // observed latency quantile (FileSystem::hedge_delay), fire the same
    // get at the next replica; first success wins, the loser is
    // abandoned. Tail latency insurance against stalled or silently
    // partitioned primaries. The hedge decision depends only on
    // simulated time and the metrics histogram, so it replays exactly.
    if (round == 0 && copies >= 2) {
      const SimTime hedge_after = fs_->hedge_delay();
      NodeId n0 = kInvalidNode, n1 = kInvalidNode;
      std::size_t r0 = 0, r1 = 0;
      if (hedge_after > 0) {
        for (std::size_t rank = 0; rank < order.size(); ++rank) {
          if (!fs_->has_server(order[rank])) continue;
          if (n0 == kInvalidNode) {
            n0 = order[rank];
            r0 = rank;
          } else {
            n1 = order[rank];
            r1 = rank;
            break;
          }
        }
      }
      if (n1 != kInvalidNode) {
        auto st = std::make_shared<HedgeState>(sim);
        st->launched = 1;
        sim.spawn(hedge_arm(fs_, node_, n0, r0, key, st));
        FileSystem* fs = fs_;
        const NodeId me = node_;
        const auto backup_ev =
            sim.schedule(hedge_after, [fs, me, n1, r1, key, st] {
              // Primary already resolved (either way): no second arm.
              if (st->have_winner || st->finished >= st->launched) return;
              ++st->launched;
              ++fs->counters().hedged_reads;
              fs->cluster().obs().metrics.counter("fs.read.hedges").inc();
              fs->cluster().sim().spawn(hedge_arm(fs, me, n1, r1, key, st));
            });
        co_await st->done;
        sim.cancel(backup_ev);
        faulted |= st->faulted;
        if (st->have_winner) {
          if (st->winner_node == n1 && st->launched == 2)
            ++fs_->counters().hedge_wins;
          if (faulted) ++fs_->counters().degraded_reads;
          if (st->winner_rank >= copies && cfg.lazy_relocation &&
              order[0] != st->winner_node) {
            sim.spawn(relocate(fs_, key, st->winner_node, order[0]));
          }
          co_return std::move(st->winner);
        }
        // Both arms failed: fall through to the sequential probe of the
        // full order (the membership may already have shifted).
      }
    }

    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      const NodeId n = order[rank];
      if (!fs_->has_server(n)) continue;
      auto r = co_await timed_get(n, key, &faulted);
      if (r.ok()) {
        if (faulted) ++fs_->counters().degraded_reads;
        // Lazy relocation: a hit below the expected replica ranks means
        // the membership changed since the stripe was written.
        if (rank >= copies && cfg.lazy_relocation && order[0] != n) {
          sim.spawn(relocate(fs_, key, n, order[0]));
        }
        co_return r;
      }
      if (r.code() != Errc::not_found && !errc_connectivity(r.code()))
        co_return r;  // real error (e.g. permission): do not mask it
    }
    // Fall back to nodes that are mid-evacuation.
    for (NodeId n : fs_->draining_nodes()) {
      if (!fs_->has_server(n)) continue;
      auto r = co_await timed_get(n, key, &faulted);
      if (r.ok()) {
        if (faulted) ++fs_->counters().degraded_reads;
        co_return r;
      }
    }
    ++fs_->counters().read_retries;
    fs_->cluster().obs().metrics.counter("fs.read.retries").inc();
    if (round + 1 < rounds)
      co_await sim.delay(backoff_delay(cfg, key, round));
  }
  co_return Error{Errc::not_found, key};
}

sim::Task<Result<kvstore::Blob>> Client::read_stripe(
    const ClassHrwPolicy& policy, const FileAttr& attr, std::string key,
    std::uint64_t key_digest, double extra_requests_per_mib) {
  const SimTime t0 = fs_->cluster().sim().now();
  auto r = co_await probe_ranked(policy, attr, key, key_digest);
  if (r.ok()) {
    ++fs_->counters().stripes_read;
    if (extra_requests_per_mib > 0) {
      // Charge the chatty sub-stripe requests against the server that
      // actually held the stripe (the probe order's first live holder).
      const auto order = policy.probe_order(key_digest);
      for (NodeId n : order) {
        if (!fs_->has_server(n)) continue;
        co_await fs_->server(n).request_burst(
            node_, extra_requests_per_mib *
                       static_cast<double>(r.value().size()) /
                       static_cast<double>(units::MiB));
        break;
      }
    }
  }
  record_stripe_op("fs.read_stripe.latency", "fs.read_stripe", t0, key);
  co_return r;
}

sim::Task<Result<kvstore::Blob>> Client::read_stripe_erasure(
    const ClassHrwPolicy& policy, const FileAttr& attr, std::string key,
    std::uint64_t key_digest) {
  const std::size_t k = attr.ec_k, m = attr.ec_m;
  const auto order = policy.probe_order(key_digest);
  if (order.empty()) co_return Error{Errc::unavailable, "no servers"};
  const SimTime t0 = fs_->cluster().sim().now();

  // Fetch shards until k are in hand; prefer the data shards (systematic
  // code: no decode needed when shards 0..k-1 arrive).
  bool faulted = false;
  std::vector<std::pair<std::size_t, kvstore::Blob>> have;
  for (std::size_t j = 0; j < k + m && have.size() < k; ++j) {
    const std::string sk = shard_key(key, j);
    const NodeId expected = order[j % order.size()];
    Result<kvstore::Blob> r = Error{Errc::not_found, sk};
    if (fs_->has_server(expected))
      r = co_await timed_get(expected, sk, &faulted);
    if (!r.ok()) {
      // Shard not where expected: probe the class + draining nodes.
      for (NodeId n : order) {
        if (n == expected || !fs_->has_server(n)) continue;
        r = co_await timed_get(n, sk, &faulted);
        if (r.ok()) break;
      }
      if (!r.ok()) {
        for (NodeId n : fs_->draining_nodes()) {
          if (!fs_->has_server(n)) continue;
          r = co_await timed_get(n, sk, &faulted);
          if (r.ok()) break;
        }
      }
    }
    if (r.ok()) have.emplace_back(j, std::move(r.value()));
  }
  if (have.size() < k) {
    record_stripe_op("fs.read_stripe.latency", "fs.read_stripe", t0, key);
    co_return Error{Errc::corruption,
                    "fewer than k shards reachable: " + key};
  }

  const bool needs_decode =
      std::any_of(have.begin(), have.end(),
                  [k](const auto& p) { return p.first >= k; });
  Bytes stripe_len = 0;
  for (const auto& [j, b] : have) stripe_len += b.size();
  // Shards are equally sized; the true stripe length is restored from
  // metadata by the caller (ghost) or decode (materialized).

  const bool ghost = have.front().second.is_ghost();
  // Parity reconstruction after a lost data shard is the degraded-read
  // path of an erasure file, whether or not an RPC visibly failed.
  if (faulted || needs_decode) ++fs_->counters().degraded_reads;
  if (needs_decode) {
    ++fs_->counters().reconstructions;
    // Decode cost on the client node.
    co_await fs_->cluster()
        .node(node_)
        .cpu()
        .consume(0.6e-9 * static_cast<double>(stripe_len), 1.0);
  }
  if (ghost) {
    ++fs_->counters().stripes_read;
    record_stripe_op("fs.read_stripe.latency", "fs.read_stripe", t0, key);
    co_return kvstore::Blob::ghost(stripe_len, 0);
  }
  // Materialized: run the real decoder.
  erasure::ReedSolomon rs(k, m);
  std::vector<std::vector<std::uint8_t>> slots(k + m);
  Bytes payload_cap = 0;
  for (auto& [j, b] : have) {
    slots[j].assign(b.bytes().begin(), b.bytes().end());
    payload_cap = slots[j].size() * k;
  }
  auto decoded = rs.decode(slots, payload_cap);
  record_stripe_op("fs.read_stripe.latency", "fs.read_stripe", t0, key);
  if (!decoded.ok()) co_return decoded.error();
  ++fs_->counters().stripes_read;
  co_return kvstore::Blob::materialized(std::move(decoded).value());
}

namespace {
struct ReadCtx {
  std::vector<Result<kvstore::Blob>> results;
  explicit ReadCtx(std::size_t n)
      : results(n, Result<kvstore::Blob>(Error{Errc::not_found, ""})) {}
};
}  // namespace

sim::Task<Result<Bytes>> Client::read_file(std::string path,
                                           double extra_requests_per_mib) {
  auto st = co_await fs_->meta().stat(node_, path);
  if (!st.ok()) co_return st.error();
  if (st.value().is_directory)
    co_return Error{Errc::is_a_directory, path};
  const Stat s = st.value();
  const ClassHrwPolicy policy = fs_->policy_for_epoch(s.attr.epoch);

  auto& sim = fs_->cluster().sim();
  ReadCtx ctx(s.stripe_count);
  sim::Semaphore window(sim, fs_->config().write_window);
  std::vector<sim::Task<>> tasks;
  for (std::size_t i = 0; i < s.stripe_count; ++i) {
    std::string key = Namespace::stripe_key(s.inode, i);
    const std::uint64_t digest = Namespace::stripe_key_digest(s.inode, i);
    tasks.push_back(guarded(
        window, [](Client* c, const ClassHrwPolicy& p, const FileAttr& a,
                   std::string k, std::uint64_t d, ReadCtx& cx,
                   std::size_t idx, double extra) -> sim::Task<> {
          if (a.redundancy == RedundancyMode::erasure) {
            cx.results[idx] =
                co_await c->read_stripe_erasure(p, a, std::move(k), d);
          } else {
            cx.results[idx] =
                co_await c->read_stripe(p, a, std::move(k), d, extra);
          }
        }(this, policy, s.attr, std::move(key), digest, ctx, i,
          extra_requests_per_mib)));
  }
  co_await sim::when_all(sim, std::move(tasks));

  Bytes total = 0;
  for (auto& r : ctx.results) {
    if (!r.ok()) co_return r.error();
    total += r.value().size();
  }
  // Ghost erasure shards round sizes up; report the metadata size.
  if (s.attr.redundancy == RedundancyMode::erasure) total = s.attr.size;
  fs_->counters().bytes_read += total;
  co_return total;
}

sim::Task<Result<std::vector<std::uint8_t>>> Client::read_file_bytes(
    std::string path) {
  auto st = co_await fs_->meta().stat(node_, path);
  if (!st.ok()) co_return st.error();
  const Stat s = st.value();
  if (s.is_directory) co_return Error{Errc::is_a_directory, path};
  const ClassHrwPolicy policy = fs_->policy_for_epoch(s.attr.epoch);

  std::vector<std::uint8_t> out;
  out.reserve(s.attr.size);
  for (std::size_t i = 0; i < s.stripe_count; ++i) {
    std::string key = Namespace::stripe_key(s.inode, i);
    const std::uint64_t digest = Namespace::stripe_key_digest(s.inode, i);
    Result<kvstore::Blob> r = Error{Errc::not_found, key};
    if (s.attr.redundancy == RedundancyMode::erasure) {
      r = co_await read_stripe_erasure(policy, s.attr, std::move(key),
                                       digest);
    } else {
      r = co_await read_stripe(policy, s.attr, std::move(key), digest, 0.0);
    }
    if (!r.ok()) co_return r.error();
    const auto& blob = r.value();
    if (blob.is_ghost())
      co_return Error{Errc::invalid_argument,
                      "read_file_bytes on a ghost-written file"};
    // Erasure decode returns k * shard_size bytes, which exceeds the true
    // stripe length when the stripe is not divisible by k -- trim each
    // stripe to its metadata length so padding never lands mid-file.
    const Bytes off = static_cast<Bytes>(i) * s.attr.stripe_size;
    const Bytes expect = std::min<Bytes>(s.attr.stripe_size,
                                         s.attr.size - off);
    const std::size_t take =
        std::min<std::size_t>(blob.bytes().size(), expect);
    out.insert(out.end(), blob.bytes().begin(),
               blob.bytes().begin() + static_cast<std::ptrdiff_t>(take));
  }
  out.resize(std::min<std::size_t>(out.size(), s.attr.size));
  fs_->counters().bytes_read += out.size();
  co_return out;
}

sim::Task<Status> Client::unlink(std::string path) {
  auto removed = co_await fs_->meta().unlink(node_, path);
  if (!removed.ok()) co_return removed.error();
  const Stat s = removed.value();
  const ClassHrwPolicy policy = fs_->policy_for_epoch(s.attr.epoch);

  for (std::size_t i = 0; i < s.stripe_count; ++i) {
    const std::string key = Namespace::stripe_key(s.inode, i);
    const std::uint64_t digest = Namespace::stripe_key_digest(s.inode, i);
    std::vector<std::pair<NodeId, std::string>> victims;
    if (s.attr.redundancy == RedundancyMode::erasure) {
      const auto order = policy.probe_order(digest);
      for (std::size_t j = 0;
           j < static_cast<std::size_t>(s.attr.ec_k + s.attr.ec_m) &&
           !order.empty();
           ++j)
        victims.emplace_back(order[j % order.size()], shard_key(key, j));
    } else {
      for (NodeId n : policy.place(digest, copy_count(s.attr)))
        victims.emplace_back(n, key);
    }
    for (auto& [n, k] : victims) {
      if (!fs_->has_server(n)) continue;
      auto st = co_await fs_->server(n).del(node_, fs_->token(), k);
      (void)st;  // not_found is fine: replica may have moved
    }
    // Sweep draining nodes too so evacuations do not resurrect the file.
    for (NodeId n : fs_->draining_nodes()) {
      if (!fs_->has_server(n)) continue;
      auto st = co_await fs_->server(n).del(node_, fs_->token(), key);
      (void)st;
    }
  }
  co_return Status{};
}

}  // namespace memfss::fs
