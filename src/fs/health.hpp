// Per-server health tracking for the client path (partition tolerance).
//
// One CircuitBreaker per participating node, shared by every Client of
// the filesystem (clients are transient by-value handles; the registry
// lives in the FileSystem). The breaker follows the classic three-state
// machine:
//
//   closed     -- requests flow; `failure_threshold` *consecutive*
//                 connectivity faults (timeout / unreachable /
//                 unavailable / io_error, see errc_health_fault) open it;
//   open       -- requests are rejected locally (Errc::rejected, zero
//                 simulated cost) until `cooldown` elapses;
//   half-open  -- exactly one trial request is let through; success
//                 closes the breaker, failure re-opens it for another
//                 cooldown.
//
// Application-level answers (not_found, permission, ...) prove the server
// is alive and close the breaker like any success. Rejections the client
// synthesizes itself never feed back into the state machine.
//
// Everything is driven by simulated time passed in by the caller, so the
// state machine is deterministic and replays exactly under a fixed seed.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>

#include "common/result.hpp"
#include "common/types.hpp"

namespace memfss::obs {
struct Observability;
}

namespace memfss::fs {

enum class BreakerState : std::uint8_t { closed, open, half_open };

constexpr std::string_view breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::closed: return "closed";
    case BreakerState::open: return "open";
    case BreakerState::half_open: return "half-open";
  }
  return "?";
}

struct BreakerConfig {
  int failure_threshold = 0;  ///< consecutive faults to open; 0 disables
  SimTime cooldown = 1.0;     ///< open -> half-open trial delay
};

class CircuitBreaker {
 public:
  /// Whether a request may be issued now. Performs the open -> half-open
  /// transition when the cooldown has elapsed; in half-open, admits a
  /// single trial until its outcome is recorded.
  bool allow(const BreakerConfig& cfg, SimTime now);

  /// Record a request outcome. `fault` per errc_health_fault. Returns
  /// true when this record transitioned the breaker to open.
  bool record(const BreakerConfig& cfg, bool fault, SimTime now);

  BreakerState state() const { return state_; }
  int consecutive_failures() const { return consecutive_; }

 private:
  BreakerState state_ = BreakerState::closed;
  int consecutive_ = 0;
  SimTime opened_at_ = 0.0;
  bool trial_in_flight_ = false;
};

/// NodeId -> CircuitBreaker map plus aggregate counters. With a zero
/// failure_threshold the registry is inert: allow() is always true and
/// record() never mutates, so default-configured deployments behave (and
/// trace) exactly as if it did not exist.
class HealthRegistry {
 public:
  HealthRegistry(BreakerConfig cfg, obs::Observability* obs)
      : cfg_(cfg), obs_(obs) {}

  bool enabled() const { return cfg_.failure_threshold > 0; }
  const BreakerConfig& config() const { return cfg_; }
  void set_config(BreakerConfig cfg) { cfg_ = cfg; }

  /// Whether a request to `n` may be issued now.
  bool allow(NodeId n, SimTime now);

  /// Record the outcome of a request to `n` that was actually issued.
  void record(NodeId n, Errc code, SimTime now);

  BreakerState state(NodeId n) const;

  std::size_t opens() const { return opens_; }       ///< closed/half -> open
  std::size_t rejections() const { return rejections_; }

  /// Count a locally synthesized rejection (caller saw allow() == false).
  void count_rejection() { ++rejections_; }

  /// Drop all breaker state (admin reset between experiment repetitions).
  void reset();

 private:
  BreakerConfig cfg_;
  obs::Observability* obs_;
  std::unordered_map<NodeId, CircuitBreaker> breakers_;
  std::size_t opens_ = 0;
  std::size_t rejections_ = 0;
};

}  // namespace memfss::fs
