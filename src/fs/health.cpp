#include "fs/health.hpp"

#include "obs/obs.hpp"

namespace memfss::fs {

bool CircuitBreaker::allow(const BreakerConfig& cfg, SimTime now) {
  if (state_ == BreakerState::closed) return true;
  if (state_ == BreakerState::open) {
    if (now - opened_at_ < cfg.cooldown) return false;
    state_ = BreakerState::half_open;
    trial_in_flight_ = false;
  }
  // Half-open: a single trial probes the server; everyone else keeps
  // getting rejected until its outcome is recorded.
  if (trial_in_flight_) return false;
  trial_in_flight_ = true;
  return true;
}

bool CircuitBreaker::record(const BreakerConfig& cfg, bool fault,
                            SimTime now) {
  if (!fault) {
    state_ = BreakerState::closed;
    consecutive_ = 0;
    trial_in_flight_ = false;
    return false;
  }
  ++consecutive_;
  trial_in_flight_ = false;
  if (state_ == BreakerState::half_open ||
      (state_ == BreakerState::closed &&
       consecutive_ >= cfg.failure_threshold)) {
    state_ = BreakerState::open;
    opened_at_ = now;
    return true;
  }
  // Already open: a straggler outcome from before the trip; the cooldown
  // clock is not extended.
  return false;
}

bool HealthRegistry::allow(NodeId n, SimTime now) {
  if (!enabled()) return true;
  return breakers_[n].allow(cfg_, now);
}

void HealthRegistry::record(NodeId n, Errc code, SimTime now) {
  if (!enabled()) return;
  const bool fault = code != Errc::ok && errc_health_fault(code);
  if (breakers_[n].record(cfg_, fault, now)) {
    ++opens_;
    if (obs_) {
      obs_->metrics.counter("fs.breaker.opens").inc();
      if (obs_->tracer.enabled(obs::Component::fs))
        obs_->tracer.instant(obs::Component::fs, n, "fs.breaker.open",
                             std::string(errc_name(code)));
    }
  }
}

BreakerState HealthRegistry::state(NodeId n) const {
  auto it = breakers_.find(n);
  return it == breakers_.end() ? BreakerState::closed : it->second.state();
}

void HealthRegistry::reset() {
  breakers_.clear();
  opens_ = 0;
  rejections_ = 0;
}

}  // namespace memfss::fs
