#include "fs/placement.hpp"

#include <algorithm>
#include <cassert>

#include "common/str.hpp"
#include "hash/hashes.hpp"
#include "hash/hrw.hpp"

namespace memfss::fs {

// --- ClassMembership --------------------------------------------------------

void ClassMembership::set_members(std::uint32_t class_id,
                                  std::vector<NodeId> nodes) {
  members_[class_id] = std::move(nodes);
  ++generation_;
}

void ClassMembership::add_member(std::uint32_t class_id, NodeId node) {
  auto& v = members_[class_id];
  if (std::find(v.begin(), v.end(), node) == v.end()) {
    v.push_back(node);
    ++generation_;
  }
}

void ClassMembership::remove_member(std::uint32_t class_id, NodeId node) {
  auto it = members_.find(class_id);
  if (it == members_.end()) return;
  auto& v = it->second;
  const auto end = std::remove(v.begin(), v.end(), node);
  if (end != v.end()) {
    v.erase(end, v.end());
    ++generation_;
  }
}

const std::vector<NodeId>& ClassMembership::members(
    std::uint32_t class_id) const {
  static const std::vector<NodeId> kEmpty;
  auto it = members_.find(class_id);
  return it == members_.end() ? kEmpty : it->second;
}

bool ClassMembership::has_class(std::uint32_t class_id) const {
  return members_.count(class_id) > 0;
}

std::vector<NodeId> ClassMembership::all_members() const {
  std::vector<NodeId> out;
  for (const auto& [id, nodes] : members_)
    out.insert(out.end(), nodes.begin(), nodes.end());
  return out;
}

// --- PlacementPolicy --------------------------------------------------------

std::vector<NodeId> PlacementPolicy::probe_order(
    std::string_view stripe_key) const {
  return place(stripe_key, static_cast<std::size_t>(-1));
}

// --- ClassHrwPolicy ---------------------------------------------------------

ClassHrwPolicy::ClassHrwPolicy(const PlacementEpoch& epoch,
                               const ClassMembership& members,
                               hash::ScoreFn fn)
    : epoch_(epoch), members_(members), fn_(fn) {}

const std::vector<hash::NodeClass>& ClassHrwPolicy::snapshot() const {
  // Rebuild only when the live membership has mutated since the cached
  // copy was taken; placements between membership changes share one
  // snapshot instead of re-copying every member vector per call.
  const std::uint64_t gen = members_.generation();
  if (snapshot_generation_ != gen) {
    snapshot_cache_.clear();
    snapshot_cache_.reserve(epoch_.weights.size());
    for (const auto& cw : epoch_.weights) {
      snapshot_cache_.push_back(hash::NodeClass{
          cw.class_id, cw.weight, members_.members(cw.class_id)});
    }
    snapshot_generation_ = gen;
  }
  return snapshot_cache_;
}

std::vector<NodeId> ClassHrwPolicy::place(std::uint64_t key_digest,
                                          std::size_t copies) const {
  const auto& classes = snapshot();
  auto placements = hash::place_replicas(key_digest, classes, copies, fn_);
  std::vector<NodeId> out;
  out.reserve(placements.size());
  for (const auto& p : placements) out.push_back(p.node);
  return out;
}

std::vector<NodeId> ClassHrwPolicy::place(std::string_view stripe_key,
                                          std::size_t copies) const {
  return place(hash::key_digest(stripe_key), copies);
}

std::vector<NodeId> ClassHrwPolicy::probe_order(
    std::uint64_t key_digest) const {
  return hash::rank_in_winning_class(key_digest, snapshot(), fn_);
}

std::vector<NodeId> ClassHrwPolicy::probe_order(
    std::string_view stripe_key) const {
  return probe_order(hash::key_digest(stripe_key));
}

std::uint32_t ClassHrwPolicy::winning_class(std::uint64_t key_digest) const {
  const auto& classes = snapshot();
  const std::size_t i = hash::select_class(key_digest, classes, fn_);
  return classes[i].class_id;
}

std::uint32_t ClassHrwPolicy::winning_class(
    std::string_view stripe_key) const {
  return winning_class(hash::key_digest(stripe_key));
}

std::string ClassHrwPolicy::describe() const {
  std::string s = strformat("class-hrw(epoch=%u", epoch_.id);
  for (const auto& cw : epoch_.weights)
    s += strformat(", c%u:w=%.4f:n=%zu", cw.class_id, cw.weight,
                   members_.members(cw.class_id).size());
  return s + ")";
}

// --- UniformHrwPolicy -------------------------------------------------------

UniformHrwPolicy::UniformHrwPolicy(std::vector<NodeId> nodes,
                                   hash::ScoreFn fn)
    : nodes_(std::move(nodes)), fn_(fn) {
  assert(!nodes_.empty());
}

std::vector<NodeId> UniformHrwPolicy::place(std::string_view stripe_key,
                                            std::size_t copies) const {
  return hash::hrw_top(stripe_key, nodes_, copies, fn_);
}

std::string UniformHrwPolicy::describe() const {
  return strformat("uniform-hrw(n=%zu)", nodes_.size());
}

// --- ConsistentHashPolicy ---------------------------------------------------

ConsistentHashPolicy::ConsistentHashPolicy(const std::vector<NodeId>& nodes,
                                           std::size_t vnodes)
    : ring_(vnodes) {
  for (NodeId n : nodes) ring_.add_node(n);
}

std::vector<NodeId> ConsistentHashPolicy::place(std::string_view stripe_key,
                                                std::size_t copies) const {
  return ring_.select_top(stripe_key, copies);
}

std::string ConsistentHashPolicy::describe() const {
  return strformat("consistent-hash(n=%zu)", ring_.node_count());
}

// --- ModuloPolicy -------------------------------------------------------------

ModuloPolicy::ModuloPolicy(std::vector<NodeId> nodes)
    : nodes_(std::move(nodes)) {
  assert(!nodes_.empty());
}

std::vector<NodeId> ModuloPolicy::place(std::string_view stripe_key,
                                        std::size_t copies) const {
  const std::uint64_t d = hash::key_digest(stripe_key);
  std::vector<NodeId> out;
  const std::size_t n = nodes_.size();
  for (std::size_t i = 0; i < std::min(copies, n); ++i)
    out.push_back(nodes_[(d + i) % n]);
  return out;
}

std::string ModuloPolicy::describe() const {
  return strformat("modulo(n=%zu)", nodes_.size());
}

}  // namespace memfss::fs
