#include "fs/placement.hpp"

#include <algorithm>
#include <cassert>

#include "common/str.hpp"
#include "hash/hashes.hpp"
#include "hash/hrw.hpp"

namespace memfss::fs {

// --- ClassMembership --------------------------------------------------------

void ClassMembership::set_members(std::uint32_t class_id,
                                  std::vector<NodeId> nodes) {
  members_[class_id] = std::move(nodes);
}

void ClassMembership::add_member(std::uint32_t class_id, NodeId node) {
  auto& v = members_[class_id];
  if (std::find(v.begin(), v.end(), node) == v.end()) v.push_back(node);
}

void ClassMembership::remove_member(std::uint32_t class_id, NodeId node) {
  auto it = members_.find(class_id);
  if (it == members_.end()) return;
  auto& v = it->second;
  v.erase(std::remove(v.begin(), v.end(), node), v.end());
}

const std::vector<NodeId>& ClassMembership::members(
    std::uint32_t class_id) const {
  static const std::vector<NodeId> kEmpty;
  auto it = members_.find(class_id);
  return it == members_.end() ? kEmpty : it->second;
}

bool ClassMembership::has_class(std::uint32_t class_id) const {
  return members_.count(class_id) > 0;
}

std::vector<NodeId> ClassMembership::all_members() const {
  std::vector<NodeId> out;
  for (const auto& [id, nodes] : members_)
    out.insert(out.end(), nodes.begin(), nodes.end());
  return out;
}

// --- PlacementPolicy --------------------------------------------------------

std::vector<NodeId> PlacementPolicy::probe_order(
    std::string_view stripe_key) const {
  return place(stripe_key, static_cast<std::size_t>(-1));
}

// --- ClassHrwPolicy ---------------------------------------------------------

ClassHrwPolicy::ClassHrwPolicy(const PlacementEpoch& epoch,
                               const ClassMembership& members,
                               hash::ScoreFn fn)
    : epoch_(epoch), members_(members), fn_(fn) {}

std::vector<hash::NodeClass> ClassHrwPolicy::snapshot() const {
  std::vector<hash::NodeClass> classes;
  classes.reserve(epoch_.weights.size());
  for (const auto& cw : epoch_.weights) {
    classes.push_back(
        hash::NodeClass{cw.class_id, cw.weight, members_.members(cw.class_id)});
  }
  return classes;
}

std::vector<NodeId> ClassHrwPolicy::place(std::string_view stripe_key,
                                          std::size_t copies) const {
  const auto classes = snapshot();
  auto placements = hash::place_replicas(stripe_key, classes, copies, fn_);
  std::vector<NodeId> out;
  out.reserve(placements.size());
  for (const auto& p : placements) out.push_back(p.node);
  return out;
}

std::vector<NodeId> ClassHrwPolicy::probe_order(
    std::string_view stripe_key) const {
  const auto classes = snapshot();
  return hash::rank_in_winning_class(stripe_key, classes, fn_);
}

std::uint32_t ClassHrwPolicy::winning_class(
    std::string_view stripe_key) const {
  const auto classes = snapshot();
  const std::size_t i = hash::select_class(stripe_key, classes, fn_);
  return classes[i].class_id;
}

std::string ClassHrwPolicy::describe() const {
  std::string s = strformat("class-hrw(epoch=%u", epoch_.id);
  for (const auto& cw : epoch_.weights)
    s += strformat(", c%u:w=%.4f:n=%zu", cw.class_id, cw.weight,
                   members_.members(cw.class_id).size());
  return s + ")";
}

// --- UniformHrwPolicy -------------------------------------------------------

UniformHrwPolicy::UniformHrwPolicy(std::vector<NodeId> nodes,
                                   hash::ScoreFn fn)
    : nodes_(std::move(nodes)), fn_(fn) {
  assert(!nodes_.empty());
}

std::vector<NodeId> UniformHrwPolicy::place(std::string_view stripe_key,
                                            std::size_t copies) const {
  return hash::hrw_top(stripe_key, nodes_, copies, fn_);
}

std::string UniformHrwPolicy::describe() const {
  return strformat("uniform-hrw(n=%zu)", nodes_.size());
}

// --- ConsistentHashPolicy ---------------------------------------------------

ConsistentHashPolicy::ConsistentHashPolicy(const std::vector<NodeId>& nodes,
                                           std::size_t vnodes)
    : ring_(vnodes) {
  for (NodeId n : nodes) ring_.add_node(n);
}

std::vector<NodeId> ConsistentHashPolicy::place(std::string_view stripe_key,
                                                std::size_t copies) const {
  return ring_.select_top(stripe_key, copies);
}

std::string ConsistentHashPolicy::describe() const {
  return strformat("consistent-hash(n=%zu)", ring_.node_count());
}

// --- ModuloPolicy -------------------------------------------------------------

ModuloPolicy::ModuloPolicy(std::vector<NodeId> nodes)
    : nodes_(std::move(nodes)) {
  assert(!nodes_.empty());
}

std::vector<NodeId> ModuloPolicy::place(std::string_view stripe_key,
                                        std::size_t copies) const {
  const std::uint64_t d = hash::key_digest(stripe_key);
  std::vector<NodeId> out;
  const std::size_t n = nodes_.size();
  for (std::size_t i = 0; i < std::min(copies, n); ++i)
    out.push_back(nodes_[(d + i) % n]);
  return out;
}

std::string ModuloPolicy::describe() const {
  return strformat("modulo(n=%zu)", nodes_.size());
}

}  // namespace memfss::fs
