// File-system namespace: the directory tree + inode table.
//
// Pure data structure (no simulation types) so it is unit-testable on its
// own; the MetadataService wraps it with distribution and cost accounting.
// Files record the placement epoch and striping/redundancy parameters used
// at creation -- the paper's "store the HRW weights in the metadata"
// design point (§III-D).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"

namespace memfss::fs {

using InodeId = std::uint64_t;

enum class RedundancyMode : std::uint8_t {
  none,        ///< single copy
  replicated,  ///< primary + (copies-1) replicas via HRW ranks
  erasure,     ///< Reed-Solomon k+m shards
};

struct FileAttr {
  Bytes size = 0;
  Bytes stripe_size = 0;
  std::uint32_t epoch = 0;          ///< placement epoch at creation
  RedundancyMode redundancy = RedundancyMode::none;
  std::uint8_t copies = 1;          ///< replicated: total copies
  std::uint8_t ec_k = 0, ec_m = 0;  ///< erasure: data/parity shards
};

struct Stat {
  InodeId inode = 0;
  bool is_directory = false;
  FileAttr attr;
  std::size_t stripe_count = 0;
};

class Namespace {
 public:
  Namespace();

  /// Create a directory; parents must exist (use mkdirs for mkdir -p).
  Status mkdir(std::string_view path);
  Status mkdirs(std::string_view path);

  /// Create a file with the given attributes; fails if it exists or the
  /// parent directory is missing.
  Result<InodeId> create(std::string_view path, const FileAttr& attr);

  Result<Stat> stat(std::string_view path) const;
  Result<Stat> stat(InodeId inode) const;
  bool exists(std::string_view path) const;

  /// Update size (on close of a streaming write).
  Status set_size(InodeId inode, Bytes size);

  /// Update the recorded placement epoch (after an active rebalance has
  /// moved the file's stripes to the current epoch's placement).
  Status set_epoch(InodeId inode, std::uint32_t epoch);

  /// All files in the tree as (path, stat), depth-first sorted order.
  std::vector<std::pair<std::string, Stat>> list_files() const;

  /// Directory listing (names only, sorted).
  Result<std::vector<std::string>> readdir(std::string_view path) const;

  /// Remove a file; returns its Stat so the caller can delete stripes.
  Result<Stat> unlink(std::string_view path);

  /// Remove an empty directory.
  Status rmdir(std::string_view path);

  /// Rename a file or directory. Destination must not exist; destination
  /// parent must. Stripe keys are inode-based, so data does not move.
  Status rename(std::string_view from, std::string_view to);

  std::size_t file_count() const { return file_count_; }
  std::size_t dir_count() const { return dir_count_; }

  /// Stripes needed for a file of `size` bytes with `stripe_size` striping
  /// (0-byte files occupy no stripes; the inode alone records existence).
  static std::size_t stripe_count(Bytes size, Bytes stripe_size);

  /// The storage key of stripe `index` of inode `ino` -- inode-based so
  /// rename never relocates data.
  static std::string stripe_key(InodeId ino, std::size_t index);

  /// Placement digest of stripe_key(ino, index), computed without forming
  /// the string: equals hash::key_digest(stripe_key(ino, index)) exactly,
  /// so digest-path placements select the same nodes as string-key ones.
  /// The string form remains the kvstore key and parse_stripe_key input.
  static std::uint64_t stripe_key_digest(InodeId ino, std::size_t index);

  /// A storage key parsed back to its file coordinates. Failure recovery
  /// depends on this inversion: the stripes a dead node held can only be
  /// learned from its key list, because HRW cannot answer "what was here"
  /// once the membership changes.
  struct StripeRef {
    InodeId inode = 0;
    std::size_t stripe = 0;
    bool is_shard = false;  ///< key names an erasure shard (".s<j>" suffix)
    std::size_t shard = 0;
  };

  /// Inverse of stripe_key (and of the shard-key suffixing in the client
  /// and maintenance paths). Nullopt for keys in neither format.
  static std::optional<StripeRef> parse_stripe_key(std::string_view key);

 private:
  struct Node {
    InodeId id = 0;
    bool is_dir = false;
    FileAttr attr;
    std::map<std::string, InodeId> children;  // dirs only
    InodeId parent = 0;
    std::string name;
  };

  Result<InodeId> resolve(std::string_view path) const;
  Result<InodeId> resolve_parent(std::string_view path,
                                 std::string* leaf) const;
  const Node* get(InodeId id) const;
  Node* get(InodeId id);

  std::map<InodeId, Node> nodes_;
  InodeId next_id_ = 2;  // 1 is the root
  std::size_t file_count_ = 0;
  std::size_t dir_count_ = 1;  // root
};

}  // namespace memfss::fs
