#include "fs/namespace.hpp"

#include <cassert>

#include "common/str.hpp"
#include "hash/hashes.hpp"

namespace memfss::fs {

namespace {
constexpr InodeId kRoot = 1;
}

Namespace::Namespace() {
  Node root;
  root.id = kRoot;
  root.is_dir = true;
  root.parent = kRoot;
  nodes_.emplace(kRoot, std::move(root));
}

const Namespace::Node* Namespace::get(InodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

Namespace::Node* Namespace::get(InodeId id) {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

Result<InodeId> Namespace::resolve(std::string_view path) const {
  InodeId cur = kRoot;
  for (const auto& part : split_path(path)) {
    const Node* n = get(cur);
    assert(n);
    if (!n->is_dir) return Error{Errc::not_a_directory, std::string(path)};
    auto it = n->children.find(part);
    if (it == n->children.end())
      return Error{Errc::not_found, std::string(path)};
    cur = it->second;
  }
  return cur;
}

Result<InodeId> Namespace::resolve_parent(std::string_view path,
                                          std::string* leaf) const {
  auto parts = split_path(path);
  if (parts.empty())
    return Error{Errc::invalid_argument, "path resolves to root"};
  *leaf = parts.back();
  parts.pop_back();
  return resolve("/" + join(parts, "/"));
}

Status Namespace::mkdir(std::string_view path) {
  std::string leaf;
  auto parent = resolve_parent(path, &leaf);
  if (!parent.ok()) return parent.error();
  Node* p = get(parent.value());
  if (!p->is_dir) return {Errc::not_a_directory, std::string(path)};
  if (p->children.count(leaf))
    return {Errc::already_exists, std::string(path)};
  Node d;
  d.id = next_id_++;
  d.is_dir = true;
  d.parent = p->id;
  d.name = leaf;
  p->children.emplace(leaf, d.id);
  nodes_.emplace(d.id, std::move(d));
  ++dir_count_;
  return {};
}

Status Namespace::mkdirs(std::string_view path) {
  std::string prefix;
  for (const auto& part : split_path(path)) {
    prefix += "/" + part;
    if (auto r = resolve(prefix); r.ok()) {
      const Node* n = get(r.value());
      if (!n->is_dir) return {Errc::not_a_directory, prefix};
      continue;
    }
    if (auto st = mkdir(prefix); !st.ok()) return st;
  }
  return {};
}

Result<InodeId> Namespace::create(std::string_view path,
                                  const FileAttr& attr) {
  if (attr.stripe_size == 0)
    return Error{Errc::invalid_argument, "stripe_size must be > 0"};
  std::string leaf;
  auto parent = resolve_parent(path, &leaf);
  if (!parent.ok()) return parent.error();
  Node* p = get(parent.value());
  if (!p->is_dir) return Error{Errc::not_a_directory, std::string(path)};
  if (p->children.count(leaf))
    return Error{Errc::already_exists, std::string(path)};
  Node f;
  f.id = next_id_++;
  f.is_dir = false;
  f.attr = attr;
  f.parent = p->id;
  f.name = leaf;
  const InodeId id = f.id;
  p->children.emplace(leaf, id);
  nodes_.emplace(id, std::move(f));
  ++file_count_;
  return id;
}

Result<Stat> Namespace::stat(std::string_view path) const {
  auto r = resolve(path);
  if (!r.ok()) return r.error();
  return stat(r.value());
}

Result<Stat> Namespace::stat(InodeId inode) const {
  const Node* n = get(inode);
  if (!n) return Error{Errc::not_found, strformat("inode %llu",
                                                  (unsigned long long)inode)};
  Stat s;
  s.inode = n->id;
  s.is_directory = n->is_dir;
  s.attr = n->attr;
  s.stripe_count =
      n->is_dir ? 0 : stripe_count(n->attr.size, n->attr.stripe_size);
  return s;
}

bool Namespace::exists(std::string_view path) const {
  return resolve(path).ok();
}

Status Namespace::set_size(InodeId inode, Bytes size) {
  Node* n = get(inode);
  if (!n) return {Errc::not_found, "inode"};
  if (n->is_dir) return {Errc::is_a_directory, "set_size on directory"};
  n->attr.size = size;
  return {};
}

Status Namespace::set_epoch(InodeId inode, std::uint32_t epoch) {
  Node* n = get(inode);
  if (!n) return {Errc::not_found, "inode"};
  if (n->is_dir) return {Errc::is_a_directory, "set_epoch on directory"};
  n->attr.epoch = epoch;
  return {};
}

std::vector<std::pair<std::string, Stat>> Namespace::list_files() const {
  std::vector<std::pair<std::string, Stat>> out;
  // Depth-first walk from the root; children maps are sorted already.
  struct Frame {
    InodeId id;
    std::string path;
  };
  std::vector<Frame> stack{{kRoot, ""}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node* n = get(f.id);
    if (!n->is_dir) {
      out.emplace_back(f.path, stat(f.id).value());
      continue;
    }
    // Push in reverse so the sorted order comes out of the stack.
    for (auto it = n->children.rbegin(); it != n->children.rend(); ++it)
      stack.push_back({it->second, f.path + "/" + it->first});
  }
  return out;
}

Result<std::vector<std::string>> Namespace::readdir(
    std::string_view path) const {
  auto r = resolve(path);
  if (!r.ok()) return r.error();
  const Node* n = get(r.value());
  if (!n->is_dir) return Error{Errc::not_a_directory, std::string(path)};
  std::vector<std::string> out;
  out.reserve(n->children.size());
  for (const auto& [name, id] : n->children) out.push_back(name);
  return out;  // std::map keeps them sorted
}

Result<Stat> Namespace::unlink(std::string_view path) {
  auto r = resolve(path);
  if (!r.ok()) return r.error();
  Node* n = get(r.value());
  if (n->is_dir) return Error{Errc::is_a_directory, std::string(path)};
  Stat s;
  s.inode = n->id;
  s.is_directory = false;
  s.attr = n->attr;
  s.stripe_count = stripe_count(n->attr.size, n->attr.stripe_size);
  Node* p = get(n->parent);
  p->children.erase(n->name);
  nodes_.erase(n->id);
  --file_count_;
  return s;
}

Status Namespace::rmdir(std::string_view path) {
  auto r = resolve(path);
  if (!r.ok()) return r.error();
  if (r.value() == kRoot) return {Errc::invalid_argument, "rmdir /"};
  Node* n = get(r.value());
  if (!n->is_dir) return {Errc::not_a_directory, std::string(path)};
  if (!n->children.empty()) return {Errc::not_empty, std::string(path)};
  Node* p = get(n->parent);
  p->children.erase(n->name);
  nodes_.erase(n->id);
  --dir_count_;
  return {};
}

Status Namespace::rename(std::string_view from, std::string_view to) {
  auto src = resolve(from);
  if (!src.ok()) return src.error();
  if (src.value() == kRoot) return {Errc::invalid_argument, "rename /"};
  std::string leaf;
  auto dst_parent = resolve_parent(to, &leaf);
  if (!dst_parent.ok()) return dst_parent.error();
  Node* dp = get(dst_parent.value());
  if (!dp->is_dir) return {Errc::not_a_directory, std::string(to)};
  if (dp->children.count(leaf)) return {Errc::already_exists, std::string(to)};
  // Reject moving a directory into its own subtree.
  for (InodeId cur = dp->id;;) {
    if (cur == src.value())
      return {Errc::invalid_argument, "rename into own subtree"};
    const Node* n = get(cur);
    if (n->parent == cur) break;  // reached root
    cur = n->parent;
  }
  Node* s = get(src.value());
  Node* sp = get(s->parent);
  sp->children.erase(s->name);
  s->parent = dp->id;
  s->name = leaf;
  dp->children.emplace(leaf, s->id);
  return {};
}

std::size_t Namespace::stripe_count(Bytes size, Bytes stripe_size) {
  assert(stripe_size > 0);
  if (size == 0) return 0;
  return static_cast<std::size_t>((size + stripe_size - 1) / stripe_size);
}

std::string Namespace::stripe_key(InodeId ino, std::size_t index) {
  return strformat("i%llu:%zu", static_cast<unsigned long long>(ino), index);
}

std::uint64_t Namespace::stripe_key_digest(InodeId ino, std::size_t index) {
  // FNV-1a over the exact character sequence of stripe_key(), folded
  // incrementally: 'i', the decimal inode, ':', the decimal index.
  std::uint64_t h = hash::fnv1a_seed();
  h = hash::fnv1a_byte(h, 'i');
  h = hash::fnv1a_decimal(h, ino);
  h = hash::fnv1a_byte(h, ':');
  h = hash::fnv1a_decimal(h, index);
  return h;
}

namespace {
bool eat_number(std::string_view& s, std::uint64_t& out) {
  if (s.empty() || s.front() < '0' || s.front() > '9') return false;
  out = 0;
  while (!s.empty() && s.front() >= '0' && s.front() <= '9') {
    out = out * 10 + static_cast<std::uint64_t>(s.front() - '0');
    s.remove_prefix(1);
  }
  return true;
}
}  // namespace

std::optional<Namespace::StripeRef> Namespace::parse_stripe_key(
    std::string_view key) {
  // "i<ino>:<stripe>" with an optional ".s<shard>" suffix.
  if (key.empty() || key.front() != 'i') return std::nullopt;
  key.remove_prefix(1);
  std::uint64_t ino = 0, stripe = 0, shard = 0;
  if (!eat_number(key, ino)) return std::nullopt;
  if (key.empty() || key.front() != ':') return std::nullopt;
  key.remove_prefix(1);
  if (!eat_number(key, stripe)) return std::nullopt;
  StripeRef ref;
  ref.inode = ino;
  ref.stripe = static_cast<std::size_t>(stripe);
  if (key.empty()) return ref;
  if (key.size() < 3 || key[0] != '.' || key[1] != 's') return std::nullopt;
  key.remove_prefix(2);
  if (!eat_number(key, shard) || !key.empty()) return std::nullopt;
  ref.is_shard = true;
  ref.shard = static_cast<std::size_t>(shard);
  return ref;
}

}  // namespace memfss::fs
