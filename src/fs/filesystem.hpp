// FileSystem: the MemFSS façade.
//
// Owns one kvstore server per participating node, the metadata service,
// the class membership + placement epochs, and the scavenging lifecycle:
//
//   FileSystem fs(cluster, config);                 // own nodes only
//   fs.add_victim_class(1, offers, /*own_fraction=*/0.25);
//   auto client = fs.client(own_node);
//   co_await client.write_file("/data/part-0", 128_MiB);
//
// Scavenging semantics reproduced from the paper:
//   - own nodes (class 0) run tasks and store data+metadata; victim nodes
//     only store data (§III-A);
//   - the class weight steers the own/victim data split (§III-B);
//   - victim stores are capped in memory and bandwidth (container
//     isolation, §III-F) and authenticated (only own-node clients hold
//     the token);
//   - a victim can be *evacuated* at any time (monitor signal, §III-A):
//     its keys migrate to the next-ranked node of its class and the node
//     leaves the membership -- exactly the HRW minimal-disruption move,
//     so lookups stay correct with no per-stripe relocation table.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/monitor.hpp"
#include "cluster/reservation.hpp"
#include "common/result.hpp"
#include "fs/health.hpp"
#include "fs/metadata.hpp"
#include "fs/namespace.hpp"
#include "fs/placement.hpp"
#include "kvstore/server.hpp"
#include "sim/task.hpp"

namespace memfss::cluster {
class FaultInjector;
}

namespace memfss::fs {

class Client;

/// Class id of the own-node class. Victim classes use ids >= 1.
inline constexpr std::uint32_t kOwnClass = 0;

struct FileSystemConfig {
  std::vector<NodeId> own_nodes;
  Bytes own_store_capacity = 48 * units::GiB;  ///< per own node
  Bytes stripe_size = 4 * units::MiB;
  RedundancyMode redundancy = RedundancyMode::none;
  std::uint8_t copies = 2;       ///< replicated mode: total copies
  std::uint8_t ec_k = 4;         ///< erasure mode: data shards
  std::uint8_t ec_m = 2;         ///< erasure mode: parity shards
  hash::ScoreFn score_fn = hash::ScoreFn::mix64;
  std::string auth_token = "memfss-secret";
  kvstore::ServerCosts server_costs{};
  MetadataCosts metadata_costs{};
  std::size_t write_window = 4;  ///< in-flight stripes per file operation
  bool lazy_relocation = true;   ///< migrate misplaced stripes on read

  // --- fault handling (client retries + failure detection) -----------------
  /// Per-stripe RPC deadline (s); 0 disables the deadline. Off by default:
  /// under saturation a healthy stripe transfer can take seconds (fluid
  /// fair-sharing), so a fixed deadline must be chosen against the
  /// deployment's load -- fault-aware setups pick e.g. 0.25. Crashed nodes
  /// fail fast regardless (connection refused / io_error mid-transfer);
  /// the deadline matters for stalled-node failover.
  SimTime rpc_timeout = 0.0;
  int max_retries = 4;             ///< probe/put rounds before giving up
  SimTime retry_backoff = 0.02;    ///< first retry delay; doubles per round
  SimTime retry_backoff_max = 0.5; ///< backoff ceiling
  double retry_jitter = 0.5;       ///< deterministic jitter fraction on backoff
  /// Time between a node dying and the filesystem acting on it (membership
  /// removal + targeted repair). Clients that time out on the node first
  /// accelerate detection via report_suspect.
  SimTime failure_detect_delay = 0.2;
  /// Drain window granted to revoked/evicted victims before leftover data
  /// is declared lost and the node is killed.
  SimTime revocation_grace = 5.0;

  // --- partition tolerance (per-server health, client resilience) ----------
  /// Consecutive connectivity faults (timeout / unreachable / unavailable /
  /// io_error) that open a node's circuit breaker; 0 disables breakers
  /// entirely (the default -- fault-naive runs behave bit-identically to
  /// builds without them).
  int breaker_failure_threshold = 0;
  /// Open -> half-open probe delay. While open, client requests to the
  /// node fail locally with Errc::rejected at zero simulated cost.
  SimTime breaker_cooldown = 1.0;
  /// Hedged reads: when the primary replica has not answered after this
  /// latency quantile of fs.read_stripe.latency, fire the same get at the
  /// next replica and take whichever answers first. 0 disables (default).
  double hedge_quantile = 0.0;
  /// Observed stripe reads required before the quantile is trusted;
  /// until then reads stay un-hedged.
  std::uint64_t hedge_min_samples = 64;

  // --- tiered hot/cold memory (DESIGN.md §16) -------------------------------
  /// Cold-tier capacity attached to every victim server; 0 disables
  /// tiering entirely (the default -- untiered runs behave bit-identically
  /// to builds without it, like breaker_failure_threshold = 0). With a
  /// tier attached, victim pressure demotes coldest keys to the tier
  /// instead of evacuating the whole node, and escalates to eviction only
  /// when the tier cannot absorb the overage.
  Bytes victim_tier_capacity = 0;
  kvstore::TierCosts tier_costs{};
  /// Heat decay epoch length (s): access counters halve per epoch.
  SimTime heat_epoch = 1.0;
  /// A demote pass stops once pool usage drops below
  /// (monitor threshold - demote_headroom) * capacity -- the slack keeps
  /// back-to-back tenant allocations from re-firing instantly.
  double demote_headroom = 0.05;
};

struct FsCounters {
  std::uint64_t stripes_written = 0;
  std::uint64_t stripes_read = 0;
  std::uint64_t lazy_relocations = 0;
  std::uint64_t read_retries = 0;
  std::uint64_t reconstructions = 0;  ///< erasure decodes that used parity
  std::uint64_t degraded_reads = 0;   ///< reads that fell back past a failure
  std::uint64_t rpc_timeouts = 0;     ///< per-stripe RPCs abandoned at deadline
  std::uint64_t write_retries = 0;    ///< stripe put attempts after a failure
  std::uint64_t hedged_reads = 0;     ///< second replica requests fired
  std::uint64_t hedge_wins = 0;       ///< hedges that supplied the result
  std::uint64_t breaker_rejections = 0;  ///< ops failed fast on open breaker
  std::uint64_t breaker_reroutes = 0;    ///< writes steered off open breakers
  Bytes bytes_written = 0;
  Bytes bytes_read = 0;
};

/// Aggregated outcome of fault handling (exp-layer recovery metrics).
struct RecoveryStats {
  std::size_t failures_handled = 0;  ///< crash / revocation / eviction events
  std::size_t repairs = 0;           ///< targeted repair passes completed
  std::size_t stripes_repaired = 0;  ///< copies/shards restored by them
  Bytes bytes_re_replicated = 0;
  double total_repair_time = 0.0;    ///< sum of failure -> repaired intervals
  double mean_time_to_repair() const {
    return repairs ? total_repair_time / static_cast<double>(repairs) : 0.0;
  }
};

class FileSystem {
 public:
  FileSystem(cluster::Cluster& cluster, FileSystemConfig config);
  ~FileSystem();
  FileSystem(const FileSystem&) = delete;
  FileSystem& operator=(const FileSystem&) = delete;

  const FileSystemConfig& config() const { return config_; }
  cluster::Cluster& cluster() { return cluster_; }
  MetadataService& meta() { return meta_; }
  FsCounters& counters() { return counters_; }
  const FsCounters& counters() const { return counters_; }

  /// A client handle bound to an own node (only own nodes mount the FUSE
  /// layer, §III-C).
  Client client(NodeId own_node);

  // --- scavenging lifecycle ----------------------------------------------

  /// Add a victim class from claimed scavenge offers; `own_fraction` is
  /// the target share of data kept on own nodes (the paper's alpha).
  /// Creates a new placement epoch. class_id must be unused and >= 1.
  Status add_victim_class(std::uint32_t class_id,
                          const std::vector<cluster::ScavengeOffer>& offers,
                          double own_fraction);

  /// Extend an existing victim class with more offers (no epoch change;
  /// HRW redistributes lazily).
  Status add_victim_nodes(std::uint32_t class_id,
                          const std::vector<cluster::ScavengeOffer>& offers);

  /// Install an explicit weight configuration as a new epoch (for
  /// multi-victim-class setups). Every class must have live members.
  Status add_epoch(std::vector<ClassWeight> weights);

  /// Evacuate one victim node: membership removal + key migration to the
  /// next-ranked nodes of its class. Store closes when drained.
  sim::Task<Status> evacuate_victim(NodeId node);

  /// Wire pressure monitors on every current victim node: when tenant
  /// memory passes `threshold_fraction`, evacuation starts automatically.
  /// With a fault injector attached, evictions are routed through its
  /// event bus (shared accounting + graceful-drain-or-kill handling).
  /// Tiered victims (victim_tier_capacity > 0) demote coldest-first
  /// instead and only escalate to eviction when the tier is full.
  void arm_victim_monitors(double threshold_fraction);

  /// One demote-coldest-first pass on a tiered victim: walk the node's
  /// keys coldest-first, demoting until pool usage drops below the
  /// monitor threshold minus demote_headroom. Escalates to the normal
  /// eviction path when demotion cannot relieve the pressure (cold tier
  /// full, or nothing left to demote).
  sim::Task<> demote_coldest(NodeId node);

  // --- fault handling ------------------------------------------------------

  /// Subscribe this filesystem to an injector's fault bus. Crashes mark
  /// the node's server down and (after failure_detect_delay) remove it
  /// from the membership and start a targeted repair of exactly the
  /// stripes it held; stalls freeze the server; class revocations drain
  /// the whole class under revocation_grace.
  void attach_fault_injector(cluster::FaultInjector& injector);

  /// Client-side failure detector input: a client that timed out (or saw
  /// unavailable/io_error) on `node` reports it. Checked against server
  /// liveness ground truth -- a slow-but-alive node is never evicted --
  /// and accelerates the pending crash detection if the node is dead.
  void report_suspect(NodeId node);

  /// Revoke a whole victim class: the owner tenant takes its machines
  /// back. Members leave the membership immediately (lookups fall back to
  /// remaining classes), drain cooperatively for `grace` seconds, then
  /// stragglers are killed and a targeted repair restores redundancy.
  sim::Task<Status> revoke_victim_class(std::uint32_t class_id,
                                        SimTime grace);

  const RecoveryStats& recovery() const { return recovery_; }

  /// Tune the client fault-handling knobs after mount (the rest of the
  /// config is fixed at construction). The right rpc_timeout depends on
  /// the deployment's load -- see FileSystemConfig::rpc_timeout -- so
  /// fault-aware rigs set it explicitly instead of baking in a default.
  void set_fault_tuning(SimTime rpc_timeout, SimTime failure_detect_delay,
                        SimTime revocation_grace) {
    config_.rpc_timeout = rpc_timeout;
    config_.failure_detect_delay = failure_detect_delay;
    config_.revocation_grace = revocation_grace;
  }

  /// Tune the partition-tolerance knobs after mount (see the matching
  /// FileSystemConfig fields). breaker_failure_threshold = 0 and
  /// hedge_quantile = 0 switch the respective feature off.
  void set_resilience_tuning(int breaker_failure_threshold,
                             SimTime breaker_cooldown, double hedge_quantile,
                             std::uint64_t hedge_min_samples = 64);

  /// Per-server circuit breakers (shared by every client handle).
  HealthRegistry& health() { return health_; }
  const HealthRegistry& health() const { return health_; }

  /// Current hedged-read trigger delay: the configured latency quantile
  /// of observed stripe reads, or 0 while hedging is off / the histogram
  /// has fewer than hedge_min_samples samples.
  SimTime hedge_delay() const;

  // --- placement ----------------------------------------------------------

  std::uint32_t current_epoch() const { return epochs_.back().id; }
  const PlacementEpoch& epoch(std::uint32_t id) const;
  ClassHrwPolicy policy_for_epoch(std::uint32_t id) const;
  const ClassMembership& membership() const { return membership_; }

  // --- servers / telemetry -------------------------------------------------

  bool has_server(NodeId node) const { return servers_.count(node) > 0; }
  kvstore::Server& server(NodeId node);
  const std::string& token() const { return config_.auth_token; }
  bool is_draining(NodeId node) const { return draining_.count(node) > 0; }
  const std::set<NodeId>& draining_nodes() const { return draining_; }

  /// Bytes currently stored on a node's server.
  Bytes bytes_on(NodeId node) const;

  /// (node, bytes) for every participating node, own nodes first.
  std::vector<std::pair<NodeId, Bytes>> distribution() const;

  /// Total bytes across all servers.
  Bytes total_bytes() const;

  /// Administrative reset between experiment repetitions: drops all file
  /// data and the namespace at zero simulated cost (the real system would
  /// simply be restarted between runs).
  void wipe_data();

  // --- maintenance (fs/maintenance.cpp) ------------------------------------

  struct MaintenanceReport {
    std::size_t files_scanned = 0;
    std::size_t files_updated = 0;   ///< rebalance: epoch advanced
    std::size_t stripes_moved = 0;   ///< rebalance: relocated stripes
    std::size_t stripes_repaired = 0;  ///< repair: copies/shards restored
    std::size_t corruptions_found = 0;  ///< scrub: bad copies dropped
    Bytes bytes_moved = 0;
    Status status{};
  };

  /// Active rebalance: migrate every file written under an older epoch to
  /// the *current* epoch's placement and update its metadata. The eager
  /// complement of lazy relocation -- run it after adding a victim class
  /// when read-triggered migration is too slow.
  sim::Task<MaintenanceReport> rebalance_all();

  /// Repair: re-create missing replicas (replicated files) and missing
  /// shards (erasure files) from surviving copies. Run after a node
  /// crash; files with redundancy `none` cannot be repaired and are
  /// skipped.
  sim::Task<MaintenanceReport> repair_all();

  /// Scrub: read every stored stripe/replica/shard, verify its checksum,
  /// drop corrupt copies, then run repair to restore redundancy. The
  /// report's `corruptions_found` counts dropped copies; status turns
  /// `corruption` if an unredundant stripe was lost.
  sim::Task<MaintenanceReport> scrub_all();

  /// Targeted repair: like repair_all but restricted to the given
  /// (inode, stripe index) list -- the stripes a failed node actually
  /// held. O(affected) instead of O(namespace), which is what makes
  /// crash recovery cheap on large trees.
  sim::Task<MaintenanceReport> repair_affected(
      std::vector<std::pair<InodeId, std::size_t>> stripes);

  // --- elasticity (own-class membership; MemEFS heritage) -----------------

  /// Grow the own class: the nodes start storing data (and metadata
  /// shards) immediately; existing stripes migrate lazily on access or
  /// eagerly via rebalance_all().
  Status add_own_nodes(const std::vector<NodeId>& nodes,
                       Bytes store_capacity = 0 /* 0 = config default */);

  /// Shrink the own class: migrate the node's data to the remaining own
  /// nodes and retire its server. At least one own node must remain.
  sim::Task<Status> remove_own_node(NodeId node);

 private:
  friend class Client;

  void make_server(NodeId node, Bytes capacity, Rate net_cap, bool victim);

  /// Begin a full victim evacuation (monitor path without an injector, or
  /// tiered-pressure escalation): spawns evacuate_victim and records the
  /// reclaim stall in fs.victim_reclaim.latency.
  void start_evacuation(NodeId node);

  // --- fault handling internals (filesystem.cpp / maintenance.cpp) --------
  void handle_crash(NodeId node);
  void handle_revoke(std::uint32_t class_id);
  void handle_evict(NodeId node);
  /// Act on a pending failure: membership removal + targeted repair.
  void detect_failure(NodeId node);
  /// Remove a dead node from membership/own-node bookkeeping.
  void retire_node(NodeId node);
  /// Dedupe raw storage keys into (inode, stripe) pairs.
  std::vector<std::pair<InodeId, std::size_t>> collect_affected(
      const std::vector<std::string>& keys) const;
  sim::Task<> run_targeted_repair(
      std::vector<std::pair<InodeId, std::size_t>> affected,
      SimTime failed_at);
  /// Migrate every key off `node` to its placement-correct home.
  sim::Task<Status> drain_node(NodeId node);
  sim::Task<> drain_or_kill(NodeId node, SimTime grace);
  /// Where a drained key belongs under live membership (kInvalidNode:
  /// nowhere useful -- drop it).
  NodeId drain_target(const std::string& key, NodeId src);
  /// Restore missing copies/shards of one stripe (shared by repair_all
  /// and repair_affected).
  sim::Task<> repair_stripe(const ClassHrwPolicy& policy, const Stat& st,
                            std::size_t stripe_index,
                            MaintenanceReport& report);

  cluster::Cluster& cluster_;
  FileSystemConfig config_;
  MetadataService meta_;
  ClassMembership membership_;
  std::vector<PlacementEpoch> epochs_;
  std::map<NodeId, std::unique_ptr<kvstore::Server>> servers_;
  std::map<NodeId, std::unique_ptr<net::CapGroup>> cap_groups_;
  std::map<NodeId, std::uint32_t> node_class_;  ///< node -> class id
  std::set<NodeId> draining_;
  std::vector<std::unique_ptr<cluster::VictimMonitor>> monitors_;
  /// Threshold fraction the monitors were armed with (demote passes stop
  /// at threshold - demote_headroom).
  double monitor_threshold_ = 1.0;
  FsCounters counters_;
  HealthRegistry health_;
  cluster::FaultInjector* injector_ = nullptr;
  RecoveryStats recovery_;
  /// Crash snapshots awaiting detection: what the node held, taken the
  /// instant it died (afterwards the data -- and the HRW answer "what was
  /// here" -- are gone).
  struct PendingFailure {
    SimTime at = 0.0;
    std::vector<std::pair<InodeId, std::size_t>> affected;
  };
  std::map<NodeId, PendingFailure> pending_failures_;
};

}  // namespace memfss::fs
