#include "fs/filesystem.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/log.hpp"
#include "common/str.hpp"
#include "fs/client.hpp"
#include "hash/hrw.hpp"
#include "hash/weight_solver.hpp"

namespace memfss::fs {

FileSystem::FileSystem(cluster::Cluster& cluster, FileSystemConfig config)
    : cluster_(cluster),
      config_(std::move(config)),
      meta_(cluster, config_.own_nodes, config_.metadata_costs) {
  assert(!config_.own_nodes.empty());
  membership_.set_members(kOwnClass, config_.own_nodes);
  epochs_.push_back(PlacementEpoch{0, {{kOwnClass, 0.0}}});
  for (NodeId n : config_.own_nodes) {
    node_class_[n] = kOwnClass;
    make_server(n, config_.own_store_capacity, net::Fabric::kUncapped,
                /*victim=*/false);
  }
}

FileSystem::~FileSystem() = default;

Client FileSystem::client(NodeId own_node) {
  assert(node_class_.count(own_node) &&
         node_class_.at(own_node) == kOwnClass);
  return Client(*this, own_node);
}

void FileSystem::make_server(NodeId node, Bytes capacity, Rate net_cap,
                             bool victim) {
  kvstore::ResourceHooks hooks;
  auto& nd = cluster_.node(node);
  hooks.cpu = &nd.cpu();
  hooks.membw = &nd.membw();
  hooks.mem = &nd.memory();
  if (victim && std::isfinite(net_cap)) {
    auto group = std::make_unique<net::CapGroup>(net_cap);
    hooks.net_cap = group.get();
    cap_groups_[node] = std::move(group);
  }
  servers_[node] = std::make_unique<kvstore::Server>(
      cluster_.sim(), cluster_.fabric(), node, capacity, config_.auth_token,
      hooks, config_.server_costs);
}

Status FileSystem::add_victim_class(
    std::uint32_t class_id, const std::vector<cluster::ScavengeOffer>& offers,
    double own_fraction) {
  if (class_id == kOwnClass)
    return {Errc::invalid_argument, "class 0 is the own class"};
  if (membership_.has_class(class_id))
    return {Errc::already_exists, strformat("class %u", class_id)};
  if (offers.empty())
    return {Errc::invalid_argument, "no scavenge offers"};
  if (own_fraction < 0.0 || own_fraction > 1.0)
    return {Errc::invalid_argument, "own_fraction out of [0,1]"};

  std::vector<NodeId> nodes;
  for (const auto& o : offers) {
    if (servers_.count(o.node))
      return {Errc::already_exists,
              strformat("node %u already participates", o.node)};
    nodes.push_back(o.node);
  }
  membership_.set_members(class_id, nodes);
  for (const auto& o : offers) {
    node_class_[o.node] = class_id;
    make_server(o.node, o.memory_cap, o.net_cap, /*victim=*/true);
  }
  const auto w = hash::two_class_weights(own_fraction);
  epochs_.push_back(PlacementEpoch{
      static_cast<std::uint32_t>(epochs_.size()),
      {{kOwnClass, w.own}, {class_id, w.victim}}});
  LOG_INFO("fs") << "victim class " << class_id << " with " << nodes.size()
                 << " nodes, alpha=" << own_fraction
                 << " (w_own=" << w.own << ", w_victim=" << w.victim << ")";
  return {};
}

Status FileSystem::add_victim_nodes(
    std::uint32_t class_id,
    const std::vector<cluster::ScavengeOffer>& offers) {
  if (!membership_.has_class(class_id) || class_id == kOwnClass)
    return {Errc::not_found, strformat("victim class %u", class_id)};
  for (const auto& o : offers) {
    if (servers_.count(o.node))
      return {Errc::already_exists,
              strformat("node %u already participates", o.node)};
  }
  for (const auto& o : offers) {
    membership_.add_member(class_id, o.node);
    node_class_[o.node] = class_id;
    make_server(o.node, o.memory_cap, o.net_cap, /*victim=*/true);
  }
  return {};
}

Status FileSystem::add_epoch(std::vector<ClassWeight> weights) {
  if (weights.empty()) return {Errc::invalid_argument, "no weights"};
  for (const auto& cw : weights) {
    if (!membership_.has_class(cw.class_id) ||
        membership_.members(cw.class_id).empty())
      return {Errc::invalid_argument,
              strformat("class %u has no members", cw.class_id)};
  }
  epochs_.push_back(PlacementEpoch{static_cast<std::uint32_t>(epochs_.size()),
                                   std::move(weights)});
  return {};
}

const PlacementEpoch& FileSystem::epoch(std::uint32_t id) const {
  assert(id < epochs_.size());
  return epochs_[id];
}

ClassHrwPolicy FileSystem::policy_for_epoch(std::uint32_t id) const {
  return ClassHrwPolicy(epoch(id), membership_, config_.score_fn);
}

kvstore::Server& FileSystem::server(NodeId node) {
  auto it = servers_.find(node);
  assert(it != servers_.end());
  return *it->second;
}

Bytes FileSystem::bytes_on(NodeId node) const {
  auto it = servers_.find(node);
  return it == servers_.end() ? 0 : it->second->store().used();
}

std::vector<std::pair<NodeId, Bytes>> FileSystem::distribution() const {
  std::vector<std::pair<NodeId, Bytes>> out;
  for (NodeId n : config_.own_nodes) out.emplace_back(n, bytes_on(n));
  for (const auto& [n, srv] : servers_) {
    if (node_class_.at(n) != kOwnClass)
      out.emplace_back(n, srv->store().used());
  }
  return out;
}

Bytes FileSystem::total_bytes() const {
  Bytes total = 0;
  for (const auto& [n, srv] : servers_) total += srv->store().used();
  return total;
}

Status FileSystem::add_own_nodes(const std::vector<NodeId>& nodes,
                                 Bytes store_capacity) {
  if (nodes.empty()) return {Errc::invalid_argument, "no nodes"};
  for (NodeId n : nodes) {
    if (n >= cluster_.node_count())
      return {Errc::invalid_argument, strformat("node %u out of range", n)};
    if (servers_.count(n))
      return {Errc::already_exists,
              strformat("node %u already participates", n)};
  }
  const Bytes cap =
      store_capacity ? store_capacity : config_.own_store_capacity;
  for (NodeId n : nodes) {
    membership_.add_member(kOwnClass, n);
    node_class_[n] = kOwnClass;
    config_.own_nodes.push_back(n);
    make_server(n, cap, net::Fabric::kUncapped, /*victim=*/false);
  }
  meta_.set_own_nodes(config_.own_nodes);
  LOG_INFO("fs") << "own class grown by " << nodes.size() << " nodes ("
                 << config_.own_nodes.size() << " total)";
  return {};
}

sim::Task<Status> FileSystem::remove_own_node(NodeId node) {
  auto cls_it = node_class_.find(node);
  if (cls_it == node_class_.end() || cls_it->second != kOwnClass)
    co_return Status{Errc::not_found, strformat("own node %u", node)};
  if (config_.own_nodes.size() <= 1)
    co_return Status{Errc::invalid_argument, "cannot remove the last own node"};
  if (draining_.count(node)) co_return Status{};

  // Same protocol as victim evacuation, within class 0: leave the
  // membership first so each key's new HRW primary is the migration
  // target, then drain.
  draining_.insert(node);
  membership_.remove_member(kOwnClass, node);
  config_.own_nodes.erase(std::remove(config_.own_nodes.begin(),
                                      config_.own_nodes.end(), node),
                          config_.own_nodes.end());
  meta_.set_own_nodes(config_.own_nodes);
  const auto& remaining = membership_.members(kOwnClass);
  auto& src = server(node);
  Status result{};
  for (const auto& k : src.store().keys()) {
    const NodeId dst = hash::hrw_select(k, remaining, config_.score_fn);
    if (auto st = co_await src.migrate_key(config_.auth_token, k,
                                           server(dst));
        !st.ok())
      result = st;
  }
  src.close();
  draining_.erase(node);
  LOG_INFO("fs") << "own node " << node << " retired ("
                 << config_.own_nodes.size() << " remain)";
  co_return result;
}

void FileSystem::wipe_data() {
  for (auto& [n, srv] : servers_) srv->wipe();
  meta_.reset();
}

sim::Task<Status> FileSystem::evacuate_victim(NodeId node) {
  auto cls_it = node_class_.find(node);
  if (cls_it == node_class_.end())
    co_return Status{Errc::not_found, strformat("node %u", node)};
  const std::uint32_t cls = cls_it->second;
  if (cls == kOwnClass)
    co_return Status{Errc::invalid_argument, "cannot evacuate an own node"};
  if (draining_.count(node)) co_return Status{};  // already in progress

  // Leave the membership first: new writes stop targeting the node, and
  // each key's new HRW primary is exactly where we migrate it (minimal
  // disruption property). Reads that race the migration fall back to
  // probing draining nodes (Client::read_stripe).
  draining_.insert(node);
  membership_.remove_member(cls, node);
  const auto& remaining = membership_.members(cls);
  auto& src = server(node);
  const auto keys = src.store().keys();
  LOG_INFO("fs") << "evacuating node " << node << ": " << keys.size()
                 << " keys, " << format_bytes(src.store().used());
  Status result{};
  if (remaining.empty() && !keys.empty()) {
    // Last node of its class: push everything back to the own class.
    for (const auto& k : keys) {
      const NodeId dst =
          hash::hrw_select(k, membership_.members(kOwnClass), config_.score_fn);
      if (auto st = co_await src.migrate_key(config_.auth_token, k,
                                             server(dst));
          !st.ok())
        result = st;
    }
  } else {
    for (const auto& k : keys) {
      const NodeId dst = hash::hrw_select(k, remaining, config_.score_fn);
      if (auto st = co_await src.migrate_key(config_.auth_token, k,
                                             server(dst));
          !st.ok())
        result = st;
    }
  }
  src.close();
  draining_.erase(node);
  co_return result;
}

void FileSystem::arm_victim_monitors(double threshold_fraction) {
  for (const auto& [node, cls] : node_class_) {
    if (cls == kOwnClass) continue;
    const NodeId n = node;
    monitors_.push_back(std::make_unique<cluster::VictimMonitor>(
        cluster_.sim(), cluster_.node(n).memory(), n, threshold_fraction,
        [this](NodeId victim) {
          cluster_.sim().spawn([](FileSystem& fs, NodeId v) -> sim::Task<> {
            auto st = co_await fs.evacuate_victim(v);
            if (!st.ok())
              LOG_WARN("fs") << "evacuation of node " << v
                             << " failed: " << st.error().to_string();
          }(*this, victim));
        }));
  }
}

}  // namespace memfss::fs
