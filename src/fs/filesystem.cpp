#include "fs/filesystem.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

#include "cluster/fault.hpp"
#include "common/log.hpp"
#include "common/str.hpp"
#include "fs/client.hpp"
#include "hash/hrw.hpp"
#include "hash/weight_solver.hpp"
#include "sim/sync.hpp"

namespace memfss::fs {

FileSystem::FileSystem(cluster::Cluster& cluster, FileSystemConfig config)
    : cluster_(cluster),
      config_(std::move(config)),
      meta_(cluster, config_.own_nodes, config_.metadata_costs),
      health_(BreakerConfig{config_.breaker_failure_threshold,
                            config_.breaker_cooldown},
              &cluster.obs()) {
  assert(!config_.own_nodes.empty());
  membership_.set_members(kOwnClass, config_.own_nodes);
  epochs_.push_back(PlacementEpoch{0, {{kOwnClass, 0.0}}});
  for (NodeId n : config_.own_nodes) {
    node_class_[n] = kOwnClass;
    make_server(n, config_.own_store_capacity, net::Fabric::kUncapped,
                /*victim=*/false);
  }
}

FileSystem::~FileSystem() = default;

Client FileSystem::client(NodeId own_node) {
  assert(node_class_.count(own_node) &&
         node_class_.at(own_node) == kOwnClass);
  return Client(*this, own_node);
}

void FileSystem::make_server(NodeId node, Bytes capacity, Rate net_cap,
                             bool victim) {
  kvstore::ResourceHooks hooks;
  auto& nd = cluster_.node(node);
  hooks.cpu = &nd.cpu();
  hooks.membw = &nd.membw();
  hooks.mem = &nd.memory();
  hooks.obs = &cluster_.obs();
  if (victim && std::isfinite(net_cap)) {
    auto group = std::make_unique<net::CapGroup>(net_cap);
    hooks.net_cap = group.get();
    cap_groups_[node] = std::move(group);
  }
  servers_[node] = std::make_unique<kvstore::Server>(
      cluster_.sim(), cluster_.fabric(), node, capacity, config_.auth_token,
      hooks, config_.server_costs);
  if (victim && config_.victim_tier_capacity > 0) {
    servers_[node]->attach_tier(
        std::make_unique<kvstore::ColdTier>(config_.victim_tier_capacity,
                                            config_.tier_costs),
        config_.heat_epoch);
  }
}

Status FileSystem::add_victim_class(
    std::uint32_t class_id, const std::vector<cluster::ScavengeOffer>& offers,
    double own_fraction) {
  if (class_id == kOwnClass)
    return {Errc::invalid_argument, "class 0 is the own class"};
  if (membership_.has_class(class_id))
    return {Errc::already_exists, strformat("class %u", class_id)};
  if (offers.empty())
    return {Errc::invalid_argument, "no scavenge offers"};
  if (own_fraction < 0.0 || own_fraction > 1.0)
    return {Errc::invalid_argument, "own_fraction out of [0,1]"};

  std::vector<NodeId> nodes;
  for (const auto& o : offers) {
    if (servers_.count(o.node))
      return {Errc::already_exists,
              strformat("node %u already participates", o.node)};
    nodes.push_back(o.node);
  }
  membership_.set_members(class_id, nodes);
  for (const auto& o : offers) {
    node_class_[o.node] = class_id;
    make_server(o.node, o.memory_cap, o.net_cap, /*victim=*/true);
  }
  const auto w = hash::two_class_weights(own_fraction);
  epochs_.push_back(PlacementEpoch{
      static_cast<std::uint32_t>(epochs_.size()),
      {{kOwnClass, w.own}, {class_id, w.victim}}});
  LOG_INFO("fs") << "victim class " << class_id << " with " << nodes.size()
                 << " nodes, alpha=" << own_fraction
                 << " (w_own=" << w.own << ", w_victim=" << w.victim << ")";
  return {};
}

Status FileSystem::add_victim_nodes(
    std::uint32_t class_id,
    const std::vector<cluster::ScavengeOffer>& offers) {
  if (!membership_.has_class(class_id) || class_id == kOwnClass)
    return {Errc::not_found, strformat("victim class %u", class_id)};
  for (const auto& o : offers) {
    if (servers_.count(o.node))
      return {Errc::already_exists,
              strformat("node %u already participates", o.node)};
  }
  for (const auto& o : offers) {
    membership_.add_member(class_id, o.node);
    node_class_[o.node] = class_id;
    make_server(o.node, o.memory_cap, o.net_cap, /*victim=*/true);
  }
  return {};
}

Status FileSystem::add_epoch(std::vector<ClassWeight> weights) {
  if (weights.empty()) return {Errc::invalid_argument, "no weights"};
  for (const auto& cw : weights) {
    if (!membership_.has_class(cw.class_id) ||
        membership_.members(cw.class_id).empty())
      return {Errc::invalid_argument,
              strformat("class %u has no members", cw.class_id)};
  }
  epochs_.push_back(PlacementEpoch{static_cast<std::uint32_t>(epochs_.size()),
                                   std::move(weights)});
  return {};
}

const PlacementEpoch& FileSystem::epoch(std::uint32_t id) const {
  assert(id < epochs_.size());
  return epochs_[id];
}

ClassHrwPolicy FileSystem::policy_for_epoch(std::uint32_t id) const {
  return ClassHrwPolicy(epoch(id), membership_, config_.score_fn);
}

kvstore::Server& FileSystem::server(NodeId node) {
  auto it = servers_.find(node);
  assert(it != servers_.end());
  return *it->second;
}

Bytes FileSystem::bytes_on(NodeId node) const {
  auto it = servers_.find(node);
  return it == servers_.end() ? 0 : it->second->store().used();
}

std::vector<std::pair<NodeId, Bytes>> FileSystem::distribution() const {
  std::vector<std::pair<NodeId, Bytes>> out;
  for (NodeId n : config_.own_nodes) out.emplace_back(n, bytes_on(n));
  for (const auto& [n, srv] : servers_) {
    if (node_class_.at(n) != kOwnClass)
      out.emplace_back(n, srv->store().used());
  }
  return out;
}

Bytes FileSystem::total_bytes() const {
  Bytes total = 0;
  for (const auto& [n, srv] : servers_) total += srv->store().used();
  return total;
}

Status FileSystem::add_own_nodes(const std::vector<NodeId>& nodes,
                                 Bytes store_capacity) {
  if (nodes.empty()) return {Errc::invalid_argument, "no nodes"};
  for (NodeId n : nodes) {
    if (n >= cluster_.node_count())
      return {Errc::invalid_argument, strformat("node %u out of range", n)};
    if (servers_.count(n))
      return {Errc::already_exists,
              strformat("node %u already participates", n)};
  }
  const Bytes cap =
      store_capacity ? store_capacity : config_.own_store_capacity;
  for (NodeId n : nodes) {
    membership_.add_member(kOwnClass, n);
    node_class_[n] = kOwnClass;
    config_.own_nodes.push_back(n);
    make_server(n, cap, net::Fabric::kUncapped, /*victim=*/false);
  }
  meta_.set_own_nodes(config_.own_nodes);
  LOG_INFO("fs") << "own class grown by " << nodes.size() << " nodes ("
                 << config_.own_nodes.size() << " total)";
  return {};
}

sim::Task<Status> FileSystem::remove_own_node(NodeId node) {
  auto cls_it = node_class_.find(node);
  if (cls_it == node_class_.end() || cls_it->second != kOwnClass)
    co_return Status{Errc::not_found, strformat("own node %u", node)};
  if (config_.own_nodes.size() <= 1)
    co_return Status{Errc::invalid_argument, "cannot remove the last own node"};
  if (draining_.count(node)) co_return Status{};

  // Same protocol as victim evacuation, within class 0: leave the
  // membership first so each key's new HRW primary is the migration
  // target, then drain.
  draining_.insert(node);
  membership_.remove_member(kOwnClass, node);
  config_.own_nodes.erase(std::remove(config_.own_nodes.begin(),
                                      config_.own_nodes.end(), node),
                          config_.own_nodes.end());
  meta_.set_own_nodes(config_.own_nodes);
  const auto& remaining = membership_.members(kOwnClass);
  auto& src = server(node);
  Status result{};
  for (const auto& k : src.store().keys()) {
    const NodeId dst = hash::hrw_select(k, remaining, config_.score_fn);
    if (auto st = co_await src.migrate_key(config_.auth_token, k,
                                           server(dst));
        !st.ok())
      result = st;
  }
  src.close();
  draining_.erase(node);
  LOG_INFO("fs") << "own node " << node << " retired ("
                 << config_.own_nodes.size() << " remain)";
  co_return result;
}

void FileSystem::wipe_data() {
  for (auto& [n, srv] : servers_) srv->wipe();
  meta_.reset();
}

sim::Task<Status> FileSystem::evacuate_victim(NodeId node) {
  auto cls_it = node_class_.find(node);
  if (cls_it == node_class_.end())
    co_return Status{Errc::not_found, strformat("node %u", node)};
  const std::uint32_t cls = cls_it->second;
  if (cls == kOwnClass)
    co_return Status{Errc::invalid_argument, "cannot evacuate an own node"};
  if (draining_.count(node)) co_return Status{};  // already in progress

  // Leave the membership first: new writes stop targeting the node, and
  // each key's new HRW primary is exactly where we migrate it (minimal
  // disruption property). Reads that race the migration fall back to
  // probing draining nodes (Client::read_stripe).
  draining_.insert(node);
  membership_.remove_member(cls, node);
  const auto& remaining = membership_.members(cls);
  auto& src = server(node);
  LOG_INFO("fs") << "evacuating node " << node << ": "
                 << src.all_keys().size() << " keys, "
                 << format_bytes(src.store().used() + src.tier_bytes());
  // Pick each key's target from the *current* membership: `remaining` is
  // a live view, and a concurrent evacuation can drain the rest of the
  // class while a migrate_key is awaited. Once the class is empty, keys
  // fall back to the own class (which always has members) instead of
  // selecting from an empty candidate set.
  const auto pick = [&](const std::string& k) {
    const auto& targets =
        remaining.empty() ? membership_.members(kOwnClass) : remaining;
    return hash::hrw_select(k, targets, config_.score_fn);
  };
  Status result{};
  std::set<std::string> attempted;
  for (;;) {
    // Re-snapshot until the store is dry: a concurrent evacuation can
    // have selected this node as a migration target just before it left
    // the membership, and that put lands *after* our snapshot -- closing
    // on the first snapshot would strand the key on a dead server. Keys
    // whose migration failed stay behind for targeted repair (attempted
    // once, same as before), so the loop terminates.
    std::vector<std::string> todo;
    for (auto& k : src.all_keys())
      if (attempted.insert(k).second) todo.push_back(std::move(k));
    if (todo.empty()) break;
    for (const auto& k : todo) {
      const NodeId dst = pick(k);
      Status st =
          co_await src.migrate_key(config_.auth_token, k, server(dst));
      if (!st.ok() && pick(k) != dst) {
        // The target itself evacuated or died between selection and
        // arrival (the failed migration restored the key locally); one
        // retry against the membership as it stands now.
        st = co_await src.migrate_key(config_.auth_token, k,
                                      server(pick(k)));
      }
      if (!st.ok()) result = st;
    }
  }
  src.close();
  draining_.erase(node);
  co_return result;
}

void FileSystem::arm_victim_monitors(double threshold_fraction) {
  monitor_threshold_ = threshold_fraction;
  for (const auto& [node, cls] : node_class_) {
    if (cls == kOwnClass) continue;
    const NodeId n = node;
    monitors_.push_back(std::make_unique<cluster::VictimMonitor>(
        cluster_.sim(), cluster_.node(n).memory(), n, threshold_fraction,
        [this](NodeId victim) {
          auto it = servers_.find(victim);
          if (it != servers_.end() && it->second->tiered() &&
              it->second->is_up() && draining_.count(victim) == 0) {
            // Tiered victim: give the tenant its RAM back by demoting
            // the coldest keys to the node-local tier instead of pushing
            // the whole store over the fabric. Escalation to a full
            // eviction happens inside the pass if the tier cannot help.
            cluster_.sim().spawn(demote_coldest(victim));
            return;
          }
          if (injector_ != nullptr) {
            // Route through the fault bus: shared accounting, and the
            // eviction gets graceful-drain-or-kill handling plus targeted
            // repair instead of an unbounded best-effort evacuation.
            injector_->evict_now(victim);
            return;
          }
          start_evacuation(victim);
        }));
  }
}

void FileSystem::start_evacuation(NodeId node) {
  cluster_.sim().spawn([](FileSystem& fs, NodeId v) -> sim::Task<> {
    const SimTime t0 = fs.cluster_.sim().now();
    const Status st = co_await fs.evacuate_victim(v);
    fs.cluster_.obs()
        .metrics.histogram("fs.victim_reclaim.latency")
        .add(fs.cluster_.sim().now() - t0);
    if (!st.ok()) {
      LOG_WARN("fs") << "evacuation of node " << v
                     << " failed: " << st.error().to_string();
    }
  }(*this, node));
}

sim::Task<> FileSystem::demote_coldest(NodeId node) {
  auto it = servers_.find(node);
  if (it == servers_.end()) co_return;
  auto& srv = *it->second;
  if (!srv.tiered() || !srv.is_up() || draining_.count(node)) co_return;
  auto& pool = cluster_.node(node).memory();
  const auto mark = [&](double f) {
    return static_cast<Bytes>(
        std::llround(f * static_cast<double>(pool.capacity())));
  };
  const Bytes threshold = mark(monitor_threshold_);
  const Bytes floor =
      mark(std::max(0.0, monitor_threshold_ - config_.demote_headroom));
  const SimTime t0 = cluster_.sim().now();
  std::size_t demoted = 0;
  bool tier_full = false;
  // Snapshot the coldest-first order once: victims are a prefix of it.
  for (const auto& key : srv.demotion_order()) {
    if (pool.used() <= floor) break;
    const Status st = co_await srv.demote_key(key);
    if (st.ok()) {
      ++demoted;
      continue;
    }
    if (st.code() == Errc::out_of_memory) {
      tier_full = true;
      break;
    }
    if (st.code() == Errc::unavailable || st.code() == Errc::io_error)
      co_return;  // node died mid-pass; crash handling owns it now
    // not_found: the key raced a delete/migration -- try the next one.
  }
  cluster_.obs()
      .metrics.histogram("fs.victim_reclaim.latency")
      .add(cluster_.sim().now() - t0);
  LOG_INFO("fs") << "node " << node << " pressure: demoted " << demoted
                 << " keys (" << format_bytes(srv.tier_bytes())
                 << " cold)" << (tier_full ? ", tier full" : "");
  if (tier_full && pool.used() >= threshold && srv.is_up() &&
      draining_.count(node) == 0) {
    // The tier refused with hot bytes still resident: demotion cannot
    // relieve the pressure, so fall back to the full reclaim protocol.
    // (A node whose hot store simply ran dry is NOT escalated -- its pool
    // contribution is already zero, and evicting cold-resident data frees
    // no tenant memory.)
    if (injector_ != nullptr)
      injector_->evict_now(node);
    else
      start_evacuation(node);
  }
}

// --- fault handling ----------------------------------------------------------

void FileSystem::attach_fault_injector(cluster::FaultInjector& injector) {
  injector_ = &injector;
  injector.on_crash([this](NodeId n) { handle_crash(n); });
  injector.on_stall([this](NodeId n, SimTime d) {
    if (auto it = servers_.find(n); it != servers_.end())
      it->second->stall_for(d);
  });
  injector.on_revoke([this](std::uint32_t cls) { handle_revoke(cls); });
  injector.on_evict([this](NodeId n) { handle_evict(n); });
}

std::vector<std::pair<InodeId, std::size_t>> FileSystem::collect_affected(
    const std::vector<std::string>& keys) const {
  std::set<std::pair<InodeId, std::size_t>> uniq;
  for (const auto& k : keys) {
    if (auto ref = Namespace::parse_stripe_key(k))
      uniq.emplace(ref->inode, ref->stripe);
  }
  return {uniq.begin(), uniq.end()};
}

void FileSystem::handle_crash(NodeId node) {
  auto it = servers_.find(node);
  if (it == servers_.end() ||
      it->second->liveness() == kvstore::Liveness::down)
    return;
  // Snapshot what the node held *before* the crash wipes it: afterwards
  // neither the data nor the HRW answer "what was here" exists.
  PendingFailure pf;
  pf.at = cluster_.sim().now();
  pf.affected = collect_affected(it->second->all_keys());
  it->second->crash();
  ++recovery_.failures_handled;
  pending_failures_[node] = std::move(pf);
  // Nobody notices instantly: membership removal + repair start when the
  // failure detector fires, or earlier via a client's report_suspect.
  // Reads in the gap exercise the timeout/fallback paths.
  cluster_.sim().schedule(config_.failure_detect_delay,
                          [this, node] { detect_failure(node); });
}

void FileSystem::report_suspect(NodeId node) {
  auto it = servers_.find(node);
  if (it == servers_.end()) return;
  // Ground truth check: a stalled or merely slow server must never be
  // evicted on a timeout alone.
  if (it->second->liveness() != kvstore::Liveness::down) return;
  detect_failure(node);
}

void FileSystem::detect_failure(NodeId node) {
  auto it = pending_failures_.find(node);
  if (it == pending_failures_.end()) return;  // already handled
  PendingFailure pf = std::move(it->second);
  pending_failures_.erase(it);
  LOG_INFO("fs") << "node " << node << " declared failed ("
                 << pf.affected.size() << " stripes affected)";
  retire_node(node);
  cluster_.sim().spawn(run_targeted_repair(std::move(pf.affected), pf.at));
}

void FileSystem::set_resilience_tuning(int breaker_failure_threshold,
                                       SimTime breaker_cooldown,
                                       double hedge_quantile,
                                       std::uint64_t hedge_min_samples) {
  config_.breaker_failure_threshold = breaker_failure_threshold;
  config_.breaker_cooldown = breaker_cooldown;
  config_.hedge_quantile = hedge_quantile;
  config_.hedge_min_samples = hedge_min_samples;
  health_.set_config(
      BreakerConfig{breaker_failure_threshold, breaker_cooldown});
}

SimTime FileSystem::hedge_delay() const {
  if (config_.hedge_quantile <= 0.0) return 0.0;
  const auto& h =
      cluster_.obs().metrics.histogram("fs.read_stripe.latency");
  if (h.count() < config_.hedge_min_samples) return 0.0;
  return h.quantile(config_.hedge_quantile);
}

void FileSystem::retire_node(NodeId node) {
  auto cls_it = node_class_.find(node);
  if (cls_it == node_class_.end()) return;
  const std::uint32_t cls = cls_it->second;
  if (cls == kOwnClass) {
    if (config_.own_nodes.size() <= 1) {
      LOG_ERROR("fs") << "last own node " << node
                      << " failed; filesystem cannot continue";
      return;
    }
    config_.own_nodes.erase(std::remove(config_.own_nodes.begin(),
                                        config_.own_nodes.end(), node),
                            config_.own_nodes.end());
    meta_.set_own_nodes(config_.own_nodes);
  }
  membership_.remove_member(cls, node);
  draining_.erase(node);
}

sim::Task<> FileSystem::run_targeted_repair(
    std::vector<std::pair<InodeId, std::size_t>> affected,
    SimTime failed_at) {
  const std::size_t n_stripes = affected.size();
  auto report = co_await repair_affected(std::move(affected));
  ++recovery_.repairs;
  recovery_.stripes_repaired += report.stripes_repaired;
  recovery_.bytes_re_replicated += report.bytes_moved;
  recovery_.total_repair_time += cluster_.sim().now() - failed_at;
  auto& obs = cluster_.obs();
  obs.metrics.histogram("fs.recovery.latency")
      .add(cluster_.sim().now() - failed_at);
  if (obs.tracer.enabled(obs::Component::cluster)) {
    obs.tracer.span(obs::Component::cluster, kInvalidNode, "fs.recovery",
                    failed_at,
                    strformat("stripes=%zu repaired=%zu", n_stripes,
                              report.stripes_repaired));
  }
  if (!report.status.ok()) {
    LOG_WARN("fs") << "targeted repair incomplete: "
                   << report.status.error().to_string();
  }
}

void FileSystem::handle_revoke(std::uint32_t class_id) {
  cluster_.sim().spawn(
      [](FileSystem& fs, std::uint32_t cls) -> sim::Task<> {
        const Status st =
            co_await fs.revoke_victim_class(cls, fs.config_.revocation_grace);
        if (!st.ok()) {
          LOG_WARN("fs") << "revocation of class " << cls
                         << " lost data: " << st.error().to_string();
        }
      }(*this, class_id));
}

sim::Task<Status> FileSystem::revoke_victim_class(std::uint32_t class_id,
                                                  SimTime grace) {
  if (class_id == kOwnClass)
    co_return Status{Errc::invalid_argument, "cannot revoke the own class"};
  if (!membership_.has_class(class_id) ||
      membership_.members(class_id).empty())
    co_return Status{Errc::not_found, strformat("victim class %u", class_id)};
  const std::vector<NodeId> members = membership_.members(class_id);
  const SimTime started = cluster_.sim().now();
  ++recovery_.failures_handled;

  // Snapshot what the class holds before anything is lost: the targeted
  // repair below needs the stripe list even if grace expires and nodes
  // are killed mid-drain.
  std::vector<std::string> keys;
  for (NodeId n : members) {
    auto ks = server(n).all_keys();
    keys.insert(keys.end(), std::make_move_iterator(ks.begin()),
                std::make_move_iterator(ks.end()));
  }
  auto affected = collect_affected(keys);

  // Leave the membership first: select_class skips empty classes, so every
  // lookup -- under any epoch -- resolves to the remaining classes from
  // here on. Reads racing the drain fall back to draining nodes.
  for (NodeId n : members) {
    membership_.remove_member(class_id, n);
    draining_.insert(n);
  }
  LOG_INFO("fs") << "revoking class " << class_id << ": " << members.size()
                 << " nodes, " << affected.size() << " stripes, grace "
                 << grace << "s";

  std::vector<sim::Task<>> drains;
  drains.reserve(members.size());
  for (NodeId n : members) drains.push_back(drain_or_kill(n, grace));
  co_await sim::when_all(cluster_.sim(), std::move(drains));

  auto report = co_await repair_affected(std::move(affected));
  ++recovery_.repairs;
  recovery_.stripes_repaired += report.stripes_repaired;
  recovery_.bytes_re_replicated += report.bytes_moved;
  recovery_.total_repair_time += cluster_.sim().now() - started;
  auto& obs = cluster_.obs();
  obs.metrics.histogram("fs.recovery.latency")
      .add(cluster_.sim().now() - started);
  if (obs.tracer.enabled(obs::Component::cluster)) {
    obs.tracer.span(obs::Component::cluster, kInvalidNode, "fs.revoke_class",
                    started,
                    strformat("class=%u repaired=%zu", class_id,
                              report.stripes_repaired));
  }
  co_return report.status;
}

sim::Task<> FileSystem::drain_or_kill(NodeId node, SimTime grace) {
  auto drained = co_await sim::with_timeout(cluster_.sim(),
                                            drain_node(node), grace);
  auto& srv = server(node);
  if (!drained) {
    LOG_WARN("fs") << "node " << node
                   << " not drained within grace; killing it";
    srv.crash();  // leftover keys are lost; targeted repair restores them
  } else if (srv.liveness() != kvstore::Liveness::down) {
    srv.close();
  }
  draining_.erase(node);
}

sim::Task<Status> FileSystem::drain_node(NodeId node) {
  auto& src = server(node);
  Status result{};
  for (const auto& k : src.all_keys()) {
    const NodeId dst = drain_target(k, node);
    if (dst == kInvalidNode) continue;  // redundant copy: drop it
    if (auto st = co_await src.migrate_key(config_.auth_token, k,
                                           server(dst));
        !st.ok() && st.code() != Errc::not_found)
      result = st;
  }
  co_return result;
}

NodeId FileSystem::drain_target(const std::string& key, NodeId src) {
  const auto live = [&](NodeId n) {
    auto it = servers_.find(n);
    return n != src && it != servers_.end() && it->second->is_up() &&
           draining_.count(n) == 0;
  };
  // Placement-correct home: parse the key back to its file, rank under the
  // file's epoch (the revoked class is empty, so select_class falls back),
  // and land on the first live expected holder that lacks the key.
  if (auto ref = Namespace::parse_stripe_key(key)) {
    if (auto st = meta_.ns().stat(ref->inode); st.ok()) {
      const FileAttr& attr = st.value().attr;
      const ClassHrwPolicy policy = policy_for_epoch(attr.epoch);
      const std::uint64_t base =
          Namespace::stripe_key_digest(ref->inode, ref->stripe);
      std::vector<NodeId> cand;
      const auto order = policy.probe_order(base);
      if (ref->is_shard && !order.empty())
        cand.push_back(order[ref->shard % order.size()]);
      else if (attr.redundancy == RedundancyMode::replicated)
        cand = policy.place(base, std::max<std::size_t>(1, attr.copies));
      for (NodeId n : order) cand.push_back(n);
      for (NodeId n : cand) {
        if (!live(n)) continue;
        if (!servers_.at(n)->resident_size(config_.auth_token, key).ok())
          return n;
      }
      return kInvalidNode;  // every expected holder already has it
    }
  }
  // Foreign or orphaned key: park it on the own class.
  const auto& own = membership_.members(kOwnClass);
  if (own.empty()) return kInvalidNode;
  const NodeId n = hash::hrw_select(key, own, config_.score_fn);
  return live(n) ? n : kInvalidNode;
}

void FileSystem::handle_evict(NodeId node) {
  auto it = servers_.find(node);
  if (it == servers_.end() || draining_.count(node) ||
      it->second->liveness() == kvstore::Liveness::down)
    return;
  ++recovery_.failures_handled;
  const SimTime started = cluster_.sim().now();
  auto affected = collect_affected(it->second->all_keys());
  cluster_.sim().spawn(
      [](FileSystem& fs, NodeId n, SimTime t0,
         std::vector<std::pair<InodeId, std::size_t>> aff) -> sim::Task<> {
        // The tenant wants its memory back within the grace window; an
        // evacuation that overruns it is cut short.
        auto done = co_await sim::with_timeout(
            fs.cluster_.sim(), fs.evacuate_victim(n),
            fs.config_.revocation_grace);
        // Reclaim stall as the tenant experiences it: from the pressure
        // event to the point its memory is free again (drained or killed).
        fs.cluster_.obs()
            .metrics.histogram("fs.victim_reclaim.latency")
            .add(fs.cluster_.sim().now() - t0);
        if (!done) {
          LOG_WARN("fs") << "eviction of node " << n
                         << " exceeded grace; killing it";
          fs.server(n).crash();
          fs.draining_.erase(n);
        }
        co_await fs.run_targeted_repair(std::move(aff), t0);
      }(*this, node, started, std::move(affected)));
}

}  // namespace memfss::fs
