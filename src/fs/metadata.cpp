#include "fs/metadata.hpp"

#include <cassert>

#include "common/str.hpp"
#include "hash/hashes.hpp"

namespace memfss::fs {

MetadataService::MetadataService(cluster::Cluster& cluster,
                                 std::vector<NodeId> own_nodes,
                                 MetadataCosts costs)
    : cluster_(cluster), own_nodes_(std::move(own_nodes)), costs_(costs) {
  assert(!own_nodes_.empty());
}

NodeId MetadataService::shard_for(std::string_view path_or_key) const {
  const std::uint64_t d = hash::key_digest(path_or_key);
  return own_nodes_[d % own_nodes_.size()];
}

sim::Task<> MetadataService::round_trip(NodeId client, NodeId shard) {
  ++ops_;
  co_await cluster_.fabric().message(client, shard, costs_.request_bytes);
  co_await cluster_.node(shard).cpu().consume(costs_.cpu_seconds, 1.0);
  co_await cluster_.fabric().message(shard, client, costs_.response_bytes);
}

sim::Task<Status> MetadataService::mkdirs(NodeId client, std::string path) {
  co_await round_trip(client, shard_for(path));
  co_return ns_.mkdirs(path);
}

sim::Task<Result<InodeId>> MetadataService::create(NodeId client,
                                                   std::string path,
                                                   FileAttr attr) {
  co_await round_trip(client, shard_for(path));
  co_return ns_.create(path, attr);
}

sim::Task<Result<Stat>> MetadataService::stat(NodeId client,
                                              std::string path) {
  co_await round_trip(client, shard_for(path));
  co_return ns_.stat(path);
}

sim::Task<Status> MetadataService::set_size(NodeId client, InodeId inode,
                                            Bytes size) {
  co_await round_trip(
      client, shard_for(strformat("i%llu", (unsigned long long)inode)));
  co_return ns_.set_size(inode, size);
}

sim::Task<Status> MetadataService::set_epoch(NodeId client, InodeId inode,
                                             std::uint32_t epoch) {
  co_await round_trip(
      client, shard_for(strformat("i%llu", (unsigned long long)inode)));
  co_return ns_.set_epoch(inode, epoch);
}

sim::Task<Result<std::vector<std::string>>> MetadataService::readdir(
    NodeId client, std::string path) {
  co_await round_trip(client, shard_for(path));
  co_return ns_.readdir(path);
}

sim::Task<Result<Stat>> MetadataService::unlink(NodeId client,
                                                std::string path) {
  co_await round_trip(client, shard_for(path));
  co_return ns_.unlink(path);
}

sim::Task<Status> MetadataService::rename(NodeId client, std::string from,
                                          std::string to) {
  // Touches the shards of both names.
  co_await round_trip(client, shard_for(from));
  co_await round_trip(client, shard_for(to));
  co_return ns_.rename(from, to);
}

}  // namespace memfss::fs
