#include "fs/metadata.hpp"

#include <cassert>

#include "common/str.hpp"
#include "hash/hashes.hpp"

namespace memfss::fs {

MetadataService::MetadataService(cluster::Cluster& cluster,
                                 std::vector<NodeId> own_nodes,
                                 MetadataCosts costs)
    : cluster_(cluster), own_nodes_(std::move(own_nodes)), costs_(costs) {
  assert(!own_nodes_.empty());
}

NodeId MetadataService::shard_for(std::string_view path_or_key) const {
  const std::uint64_t d = hash::key_digest(path_or_key);
  return own_nodes_[d % own_nodes_.size()];
}

sim::Task<Status> MetadataService::round_trip(NodeId client, NodeId shard) {
  auto& fab = cluster_.fabric();
  if (!fab.reachable(client, shard) || !fab.reachable(shard, client))
    co_return Status{Errc::unreachable, "metadata shard unreachable"};
  ++ops_;
  co_await fab.message(client, shard, costs_.request_bytes);
  co_await cluster_.node(shard).cpu().consume(costs_.cpu_seconds, 1.0);
  co_await fab.message(shard, client, costs_.response_bytes);
  co_return Status{};
}

sim::Task<Status> MetadataService::shard_call(NodeId client,
                                              std::uint64_t digest) {
  const std::size_t n = own_nodes_.size();
  Status last{Errc::unreachable, "no metadata shard reachable"};
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId shard = own_nodes_[(digest + i) % n];
    last = co_await round_trip(client, shard);
    if (last.ok()) {
      if (i > 0) ++failovers_;
      co_return last;
    }
  }
  co_return last;
}

sim::Task<Status> MetadataService::mkdirs(NodeId client, std::string path) {
  if (auto st = co_await shard_call(client, hash::key_digest(path)); !st.ok())
    co_return st;
  co_return ns_.mkdirs(path);
}

sim::Task<Result<InodeId>> MetadataService::create(NodeId client,
                                                   std::string path,
                                                   FileAttr attr) {
  if (auto st = co_await shard_call(client, hash::key_digest(path)); !st.ok())
    co_return st.error();
  co_return ns_.create(path, attr);
}

sim::Task<Result<Stat>> MetadataService::stat(NodeId client,
                                              std::string path) {
  if (auto st = co_await shard_call(client, hash::key_digest(path)); !st.ok())
    co_return st.error();
  co_return ns_.stat(path);
}

sim::Task<Status> MetadataService::set_size(NodeId client, InodeId inode,
                                            Bytes size) {
  const auto key = strformat("i%llu", (unsigned long long)inode);
  if (auto st = co_await shard_call(client, hash::key_digest(key)); !st.ok())
    co_return st;
  co_return ns_.set_size(inode, size);
}

sim::Task<Status> MetadataService::set_epoch(NodeId client, InodeId inode,
                                             std::uint32_t epoch) {
  const auto key = strformat("i%llu", (unsigned long long)inode);
  if (auto st = co_await shard_call(client, hash::key_digest(key)); !st.ok())
    co_return st;
  co_return ns_.set_epoch(inode, epoch);
}

sim::Task<Result<std::vector<std::string>>> MetadataService::readdir(
    NodeId client, std::string path) {
  if (auto st = co_await shard_call(client, hash::key_digest(path)); !st.ok())
    co_return st.error();
  co_return ns_.readdir(path);
}

sim::Task<Result<Stat>> MetadataService::unlink(NodeId client,
                                                std::string path) {
  if (auto st = co_await shard_call(client, hash::key_digest(path)); !st.ok())
    co_return st.error();
  co_return ns_.unlink(path);
}

sim::Task<Status> MetadataService::rename(NodeId client, std::string from,
                                          std::string to) {
  // Touches the shards of both names.
  if (auto st = co_await shard_call(client, hash::key_digest(from)); !st.ok())
    co_return st;
  if (auto st = co_await shard_call(client, hash::key_digest(to)); !st.ok())
    co_return st;
  co_return ns_.rename(from, to);
}

}  // namespace memfss::fs
