// Distributed metadata service (paper §III-D).
//
// Metadata lives only on *own* nodes -- they are under the user's control
// (less likely to vanish) and close to the task clients, which matters
// because metadata operations are latency-bound. Records are sharded over
// the own nodes by modulo hashing of the path (inode id for inode-keyed
// updates); each operation charges a request/response message pair on the
// fabric and a small CPU cost on the shard node.
//
// Partition tolerance: metadata sessions are heartbeat-monitored, so a
// client never issues a round trip to a shard it cannot exchange traffic
// with (either direction -- a half-open session is torn down like a dead
// one). Instead it fails over to the next own node in shard order, and
// only when *no* shard replica is reachable does the operation fail with
// Errc::unreachable. Contrast the data path (kvstore::Server), which
// deliberately models the asymmetric signature: a cut request link fails
// fast, a cut reply link stalls into an RPC timeout.
//
// The namespace tree itself is one process-wide structure here: what the
// simulation must reproduce is the *cost and placement* of metadata
// traffic, not serialized tree blobs (see DESIGN.md substitution table).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/result.hpp"
#include "fs/namespace.hpp"
#include "net/fabric.hpp"
#include "sim/task.hpp"

namespace memfss::fs {

struct MetadataCosts {
  Bytes request_bytes = 256;   ///< request envelope on the wire
  Bytes response_bytes = 512;  ///< response envelope
  double cpu_seconds = 10e-6;  ///< shard-node CPU per operation
};

class MetadataService {
 public:
  MetadataService(cluster::Cluster& cluster, std::vector<NodeId> own_nodes,
                  MetadataCosts costs = {});

  /// Shard node for a path-keyed operation (modulo placement).
  NodeId shard_for(std::string_view path_or_key) const;

  sim::Task<Status> mkdirs(NodeId client, std::string path);
  sim::Task<Result<InodeId>> create(NodeId client, std::string path,
                                    FileAttr attr);
  sim::Task<Result<Stat>> stat(NodeId client, std::string path);
  sim::Task<Status> set_size(NodeId client, InodeId inode, Bytes size);
  sim::Task<Status> set_epoch(NodeId client, InodeId inode,
                              std::uint32_t epoch);
  sim::Task<Result<std::vector<std::string>>> readdir(NodeId client,
                                                      std::string path);
  sim::Task<Result<Stat>> unlink(NodeId client, std::string path);
  sim::Task<Status> rename(NodeId client, std::string from, std::string to);

  /// Direct (cost-free) access for tests and the harness.
  Namespace& ns() { return ns_; }
  const Namespace& ns() const { return ns_; }

  /// Administrative reset of the namespace (experiment repetitions).
  void reset() { ns_ = Namespace{}; }

  /// Elasticity: replace the own-node set the metadata shards map onto.
  /// (Record redistribution is instantaneous in the model; the moved
  /// volume is metadata-sized and negligible next to data traffic.)
  void set_own_nodes(std::vector<NodeId> own_nodes) {
    own_nodes_ = std::move(own_nodes);
  }

  std::uint64_t operation_count() const { return ops_; }
  /// Round trips served by a non-primary shard because the primary was
  /// behind a cut link (partition-tolerance telemetry).
  std::uint64_t failover_count() const { return failovers_; }

 private:
  /// One metadata round trip: request to the shard, CPU, response.
  /// Fails fast with Errc::unreachable (zero simulated cost) when either
  /// direction of the client<->shard link is cut.
  sim::Task<Status> round_trip(NodeId client, NodeId shard);

  /// Round trip against the digest's primary shard, failing over through
  /// the remaining own nodes in shard order when links are cut.
  sim::Task<Status> shard_call(NodeId client, std::uint64_t digest);

  cluster::Cluster& cluster_;
  std::vector<NodeId> own_nodes_;
  MetadataCosts costs_;
  Namespace ns_;
  std::uint64_t ops_ = 0;
  std::uint64_t failovers_ = 0;
};

}  // namespace memfss::fs
