// Data-placement policies for file stripes.
//
// MemFSS's policy is the two-layer weighted class HRW (hash/class_hrw.hpp).
// The original MemFS baseline (uniform consistent hashing over all nodes)
// and a plain uniform HRW are provided for the ablation benches; modulo
// placement serves metadata (§III-D).
//
// Placement epochs: the paper stores "the HRW weights we used to decide
// the file stripe placement" in file metadata so victim classes can be
// added later without breaking lookups. Here an *epoch* captures one
// weight configuration; files record their epoch id, and every epoch
// resolves class membership against the live member lists (so node
// removal *within* a class -- eviction, crash -- follows plain HRW
// minimal disruption across all epochs).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "hash/class_hrw.hpp"
#include "hash/consistent.hpp"

namespace memfss::fs {

/// Weight of one class inside an epoch.
struct ClassWeight {
  std::uint32_t class_id = 0;
  double weight = 0.0;
};

/// One placement configuration (recorded per file in metadata).
struct PlacementEpoch {
  std::uint32_t id = 0;
  std::vector<ClassWeight> weights;
};

/// Live class membership, shared by all epochs.
class ClassMembership {
 public:
  void set_members(std::uint32_t class_id, std::vector<NodeId> nodes);
  void add_member(std::uint32_t class_id, NodeId node);
  void remove_member(std::uint32_t class_id, NodeId node);
  const std::vector<NodeId>& members(std::uint32_t class_id) const;
  bool has_class(std::uint32_t class_id) const;
  std::vector<NodeId> all_members() const;

  /// Bumped on every mutation (set_members / add_member / remove_member
  /// that changes a member list). Policies key their membership-snapshot
  /// caches on this, so a stale snapshot can never outlive a revocation.
  std::uint64_t generation() const { return generation_; }

 private:
  std::map<std::uint32_t, std::vector<NodeId>> members_;
  std::uint64_t generation_ = 0;
};

/// Strategy interface: map a stripe key to servers.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Top-`copies` distinct servers for the stripe (primary first).
  virtual std::vector<NodeId> place(std::string_view stripe_key,
                                    std::size_t copies) const = 0;

  /// Full probe order (for lazy relocation): every candidate server,
  /// best first. Default: place() with a large count.
  virtual std::vector<NodeId> probe_order(std::string_view stripe_key) const;

  virtual std::string describe() const = 0;
};

/// MemFSS: class layer weighted HRW, node layer plain HRW.
///
/// Digest fast path: the `std::uint64_t` overloads take a precomputed key
/// digest (Namespace::stripe_key_digest) and skip both the stripe-key
/// string formatting and the per-layer re-hash; they resolve to exactly
/// the same nodes as the string forms. The class-membership snapshot is
/// cached and rebuilt only when ClassMembership::generation() moves, so
/// steady-state placements copy no membership vectors; epoch weights are
/// captured at construction (a new epoch is a new policy object).
class ClassHrwPolicy final : public PlacementPolicy {
 public:
  ClassHrwPolicy(const PlacementEpoch& epoch, const ClassMembership& members,
                 hash::ScoreFn fn = hash::ScoreFn::mix64);

  std::vector<NodeId> place(std::string_view stripe_key,
                            std::size_t copies) const override;
  std::vector<NodeId> place(std::uint64_t key_digest,
                            std::size_t copies) const;
  std::vector<NodeId> probe_order(std::string_view stripe_key) const override;
  std::vector<NodeId> probe_order(std::uint64_t key_digest) const;
  std::string describe() const override;

  /// The class that wins the stripe (exposed for tests / telemetry).
  std::uint32_t winning_class(std::string_view stripe_key) const;
  std::uint32_t winning_class(std::uint64_t key_digest) const;

 private:
  const std::vector<hash::NodeClass>& snapshot() const;
  PlacementEpoch epoch_;
  const ClassMembership& members_;
  hash::ScoreFn fn_;
  // Membership snapshot cache, keyed on the membership generation. ~0 is
  // "never built" (generations count up from 0 and cannot reach it).
  mutable std::vector<hash::NodeClass> snapshot_cache_;
  mutable std::uint64_t snapshot_generation_ = ~0ull;
};

/// Uniform HRW over one flat node set (no classes, no weights).
class UniformHrwPolicy final : public PlacementPolicy {
 public:
  explicit UniformHrwPolicy(std::vector<NodeId> nodes,
                            hash::ScoreFn fn = hash::ScoreFn::mix64);
  std::vector<NodeId> place(std::string_view stripe_key,
                            std::size_t copies) const override;
  std::string describe() const override;

 private:
  std::vector<NodeId> nodes_;
  hash::ScoreFn fn_;
};

/// MemFS baseline: consistent hashing ring with virtual nodes.
class ConsistentHashPolicy final : public PlacementPolicy {
 public:
  explicit ConsistentHashPolicy(const std::vector<NodeId>& nodes,
                                std::size_t vnodes = 128);
  std::vector<NodeId> place(std::string_view stripe_key,
                            std::size_t copies) const override;
  std::string describe() const override;

 private:
  hash::ConsistentRing ring_;
};

/// Modulo placement (metadata, §III-D): digest(key) mod n.
class ModuloPolicy final : public PlacementPolicy {
 public:
  explicit ModuloPolicy(std::vector<NodeId> nodes);
  std::vector<NodeId> place(std::string_view stripe_key,
                            std::size_t copies) const override;
  std::string describe() const override;

 private:
  std::vector<NodeId> nodes_;
};

}  // namespace memfss::fs
